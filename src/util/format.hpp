// Human-readable formatting (byte sizes, counts, rates) plus a fixed-width
// text table printer used by the benchmark harnesses to emit the paper's
// tables and figure series.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace prpb::util {

/// "1.6 GB", "25 MB", "999 B" — powers of 1024, one decimal when < 10.
std::string human_bytes(std::uint64_t bytes);

/// "67M", "1.0M", "65K", "123" — powers of 1000 with K/M/G/T suffixes.
std::string human_count(std::uint64_t count);

/// "3.21e+06" style scientific rate string used in figure series output.
std::string sci(double value);

/// Fixed precision decimal string.
std::string fixed(double value, int digits);

/// Monospaced table with a header row; column widths auto-fit the content.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Renders the table (header, rule, rows) as a string ending in newline.
  [[nodiscard]] std::string str() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace prpb::util
