// Fast decimal integer/float parsing and formatting used by the edge-file
// codecs. The "fast" paths avoid locale machinery and stream dispatch; the
// arraylang/dataframe backends deliberately use slower generic conversions.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace prpb::util {

/// Parses a non-negative decimal integer from the front of `s`.
/// Returns the value and advances `pos` past the digits, or nullopt if no
/// digit is present at `pos` or the value overflows uint64.
std::optional<std::uint64_t> parse_u64(std::string_view s, std::size_t& pos);

/// Parses an entire string as a non-negative decimal integer (no leading or
/// trailing junk allowed).
std::optional<std::uint64_t> parse_u64_full(std::string_view s);

/// Parses a signed decimal integer covering the full int64 range.
std::optional<std::int64_t> parse_i64_full(std::string_view s);

/// Parses a floating point number (full string).
std::optional<double> parse_f64_full(std::string_view s);

/// Appends the decimal representation of `v` to `out`; returns digit count.
std::size_t append_u64(std::string& out, std::uint64_t v);

/// Writes decimal digits of `v` into `buf` (must hold >= 20 bytes);
/// returns the number of bytes written. No terminator is added.
std::size_t format_u64(char* buf, std::uint64_t v);

/// Splits `line` at the first tab character. Returns {before, after}
/// or nullopt if there is no tab.
std::optional<std::pair<std::string_view, std::string_view>> split_tab(
    std::string_view line);

/// Strips a trailing '\r' (for files written on CRLF platforms).
std::string_view strip_cr(std::string_view line);

}  // namespace prpb::util
