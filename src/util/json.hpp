// Minimal JSON writer (no parsing) for machine-readable run reports.
// Produces deterministic, correctly escaped output with no external
// dependencies; nesting is validated at runtime.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace prpb::util {

class JsonWriter {
 public:
  JsonWriter();

  // Containers. Keyed variants are for use inside objects, unkeyed inside
  // arrays or at the root.
  void begin_object();
  void begin_object(std::string_view key);
  void end_object();
  void begin_array();
  void begin_array(std::string_view key);
  void end_array();

  // Values inside objects.
  void field(std::string_view key, std::string_view value);
  void field(std::string_view key, const char* value);
  void field(std::string_view key, double value);
  void field(std::string_view key, std::int64_t value);
  void field(std::string_view key, std::uint64_t value);
  void field(std::string_view key, bool value);

  // Values inside arrays.
  void value(std::string_view text);
  void value(double number);
  void value(std::int64_t number);

  /// Finishes and returns the document. Throws InvariantError when
  /// containers are still open.
  [[nodiscard]] std::string str() const;

  /// Escapes a string per RFC 8259 (quotes, backslash, control chars).
  static std::string escape(std::string_view text);

 private:
  enum class Frame { kRoot, kObject, kArray };

  void comma();
  void key_prefix(std::string_view key);
  void raw_value(const std::string& text);

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;
};

}  // namespace prpb::util
