// Minimal JSON support for machine-readable run reports and traces:
// JsonWriter produces deterministic, correctly escaped output, and
// JsonValue is a small recursive-descent parser — enough to validate our
// own reports and Chrome traces round-trip, with no external dependencies.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace prpb::util {

class JsonWriter {
 public:
  JsonWriter();

  // Containers. Keyed variants are for use inside objects, unkeyed inside
  // arrays or at the root.
  void begin_object();
  void begin_object(std::string_view key);
  void end_object();
  void begin_array();
  void begin_array(std::string_view key);
  void end_array();

  // Values inside objects.
  void field(std::string_view key, std::string_view value);
  void field(std::string_view key, const char* value);
  void field(std::string_view key, double value);
  void field(std::string_view key, std::int64_t value);
  void field(std::string_view key, std::uint64_t value);
  void field(std::string_view key, bool value);

  // Values inside arrays.
  void value(std::string_view text);
  void value(double number);
  void value(std::int64_t number);

  /// Finishes and returns the document. Throws InvariantError when
  /// containers are still open.
  [[nodiscard]] std::string str() const;

  /// Escapes a string per RFC 8259 (quotes, backslash, control chars).
  static std::string escape(std::string_view text);

 private:
  enum class Frame { kRoot, kObject, kArray };

  void comma();
  void key_prefix(std::string_view key);
  void raw_value(const std::string& text);

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;
};

/// Parsed JSON document node. Objects preserve member order (stored as a
/// key/value sequence, not a map) so round-trip tests can compare against
/// the writer's deterministic layout.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Members = std::vector<std::pair<std::string, JsonValue>>;

  /// Parses a complete document (one value, surrounded only by
  /// whitespace). Throws IoError on malformed input.
  static JsonValue parse(std::string_view text);

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors; throw InvariantError on type mismatch.
  [[nodiscard]] bool boolean() const;
  [[nodiscard]] double number() const;
  [[nodiscard]] const std::string& string() const;
  [[nodiscard]] const Array& array() const;
  [[nodiscard]] const Members& members() const;

  /// Object member lookup (first match); nullptr when absent or not an
  /// object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// Object member lookup; throws InvariantError when absent.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Members members_;
};

}  // namespace prpb::util
