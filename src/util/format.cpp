#include "util/format.hpp"

#include <algorithm>
#include <cstdio>

#include "util/error.hpp"

namespace prpb::util {

namespace {
std::string printf_str(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}
}  // namespace

std::string human_bytes(std::uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  double v = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (v >= 1024.0 && unit + 1 < std::size(kUnits)) {
    v /= 1024.0;
    ++unit;
  }
  if (unit == 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
    return buf;
  }
  char buf[32];
  if (v < 10.0) {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f %s", v, kUnits[unit]);
  }
  return buf;
}

std::string human_count(std::uint64_t count) {
  static const char* kUnits[] = {"", "K", "M", "G", "T"};
  double v = static_cast<double>(count);
  std::size_t unit = 0;
  while (v >= 1000.0 && unit + 1 < std::size(kUnits)) {
    v /= 1000.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(count));
  } else if (v < 10.0) {
    std::snprintf(buf, sizeof(buf), "%.1f%s", v, kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f%s", v, kUnits[unit]);
  }
  return buf;
}

std::string sci(double value) { return printf_str("%.2e", value); }

std::string fixed(double value, int digits) {
  char fmt[16];
  std::snprintf(fmt, sizeof(fmt), "%%.%df", digits);
  return printf_str(fmt, value);
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  require(!header_.empty(), "TextTable: header must be non-empty");
}

void TextTable::add_row(std::vector<std::string> row) {
  require(row.size() == header_.size(),
          "TextTable: row width must match header width");
  rows_.push_back(std::move(row));
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out += "  ";
      out += row[c];
      out.append(width[c] - row[c].size(), ' ');
    }
    // trim trailing padding
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };
  emit_row(header_);
  std::string rule;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c != 0) rule += "  ";
    rule.append(width[c], '-');
  }
  out += rule + "\n";
  for (const auto& row : rows_) emit_row(row);
  return out;
}

}  // namespace prpb::util
