// Wall-clock timing utilities: Stopwatch for kernel timing, ScopeTimer for
// RAII measurement, and a TimingRecord aggregate used by the pipeline driver.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>

namespace prpb::util {

/// Monotonic wall-clock stopwatch. Kernel timings in the benchmark are wall
/// time, matching the paper's edges-per-second reporting.
class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;
  // Every duration in reports and traces comes from this clock; a
  // non-monotonic source would let NTP steps produce negative kernel times.
  static_assert(Clock::is_steady, "Stopwatch requires a monotonic clock");

  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch and returns the elapsed time before the reset.
  double restart() {
    const auto now = Clock::now();
    const double s = seconds_between(start_, now);
    start_ = now;
    return s;
  }

  /// Elapsed seconds since construction or last restart().
  [[nodiscard]] double seconds() const {
    return seconds_between(start_, Clock::now());
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  static double seconds_between(Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
  }
  Clock::time_point start_;
};

/// RAII timer: on destruction stores elapsed seconds into the bound target.
class ScopeTimer {
 public:
  explicit ScopeTimer(double& out) : out_(&out) {}
  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;
  ~ScopeTimer() { *out_ = watch_.seconds(); }

 private:
  double* out_;
  Stopwatch watch_;
};

/// One timed measurement: a label, elapsed seconds, and an item count whose
/// rate (items/second) is the reported benchmark figure.
struct TimingRecord {
  std::string label;
  double seconds = 0.0;
  std::uint64_t items = 0;

  /// Items per second; 0 when no time elapsed (avoids inf in reports).
  [[nodiscard]] double rate() const {
    return seconds > 0.0 ? static_cast<double>(items) / seconds : 0.0;
  }
};

}  // namespace prpb::util
