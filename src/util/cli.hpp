// Tiny declarative command-line parser used by examples and bench binaries.
// Supports --flag, --key value, --key=value, typed accessors with defaults,
// and auto-generated --help text.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace prpb::util {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Declares an option taking a value. `doc` appears in --help.
  void add_option(const std::string& name, const std::string& doc,
                  const std::string& default_value);
  /// Declares a boolean flag (present/absent).
  void add_flag(const std::string& name, const std::string& doc);

  /// Parses argv. Throws ConfigError on unknown options or missing values.
  /// Returns false if --help was requested (help text already printed).
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;
  /// Positional arguments left over after option parsing.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] std::string help() const;

 private:
  struct Option {
    std::string doc;
    std::string value;
    bool is_flag = false;
    bool seen = false;
  };

  Option& find(const std::string& name);
  const Option& find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::vector<std::string> order_;  // declaration order for help text
  std::map<std::string, Option> options_;
  std::vector<std::string> positional_;
};

}  // namespace prpb::util
