// Filesystem helpers: unique temp directories with RAII cleanup, sorted
// directory listings, and file-size queries. Pipeline kernels stage their
// input/output through directories created with these helpers.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace prpb::util {

/// Creates a fresh uniquely-named directory under the system temp dir (or
/// under `base` when given) and removes it — recursively — on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& prefix = "prpb",
                   const std::filesystem::path& base = {});
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
  TempDir(TempDir&& other) noexcept;
  TempDir& operator=(TempDir&& other) noexcept;
  ~TempDir();

  [[nodiscard]] const std::filesystem::path& path() const { return path_; }
  /// Convenience: path / name.
  [[nodiscard]] std::filesystem::path sub(const std::string& name) const {
    return path_ / name;
  }
  /// Releases ownership: the directory is kept on destruction.
  void keep() { owned_ = false; }

 private:
  std::filesystem::path path_;
  bool owned_ = true;
};

/// Lists regular files in `dir` in lexicographic order. Throws IoError if
/// `dir` does not exist or is not a directory.
std::vector<std::filesystem::path> list_files_sorted(
    const std::filesystem::path& dir);

/// Total size in bytes of all regular files directly inside `dir`.
std::uint64_t dir_bytes(const std::filesystem::path& dir);

/// Creates `dir` (and parents); throws IoError when a non-directory exists.
void ensure_dir(const std::filesystem::path& dir);

/// Removes all regular files directly inside `dir` (used to reset a stage).
void clear_dir(const std::filesystem::path& dir);

}  // namespace prpb::util
