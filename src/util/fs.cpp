#include "util/fs.hpp"

#include <algorithm>
#include <atomic>
#include <random>
#include <system_error>

#include "util/error.hpp"

namespace prpb::util {

namespace fs = std::filesystem;

namespace {
std::string unique_suffix() {
  static std::atomic<std::uint64_t> counter{0};
  std::random_device rd;
  const std::uint64_t n = counter.fetch_add(1);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%08x-%llu", rd(),
                static_cast<unsigned long long>(n));
  return buf;
}
}  // namespace

TempDir::TempDir(const std::string& prefix, const fs::path& base) {
  const fs::path root = base.empty() ? fs::temp_directory_path() : base;
  for (int attempt = 0; attempt < 16; ++attempt) {
    fs::path candidate = root / (prefix + "-" + unique_suffix());
    std::error_code ec;
    if (fs::create_directories(candidate, ec) && !ec) {
      path_ = std::move(candidate);
      return;
    }
  }
  throw IoError("TempDir: could not create a unique directory under " +
                root.string());
}

TempDir::TempDir(TempDir&& other) noexcept
    : path_(std::move(other.path_)), owned_(other.owned_) {
  other.owned_ = false;
}

TempDir& TempDir::operator=(TempDir&& other) noexcept {
  if (this != &other) {
    if (owned_ && !path_.empty()) {
      std::error_code ec;
      fs::remove_all(path_, ec);
    }
    path_ = std::move(other.path_);
    owned_ = other.owned_;
    other.owned_ = false;
  }
  return *this;
}

TempDir::~TempDir() {
  if (owned_ && !path_.empty()) {
    std::error_code ec;
    fs::remove_all(path_, ec);  // best effort; never throw from dtor
  }
}

std::vector<fs::path> list_files_sorted(const fs::path& dir) {
  io_require(fs::is_directory(dir),
             "list_files_sorted: not a directory: " + dir.string());
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::uint64_t dir_bytes(const fs::path& dir) {
  std::uint64_t total = 0;
  for (const auto& file : list_files_sorted(dir))
    total += static_cast<std::uint64_t>(fs::file_size(file));
  return total;
}

void ensure_dir(const fs::path& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  io_require(!ec && fs::is_directory(dir),
             "ensure_dir: cannot create directory: " + dir.string());
}

void clear_dir(const fs::path& dir) {
  if (!fs::exists(dir)) return;
  for (const auto& file : list_files_sorted(dir)) fs::remove(file);
}

}  // namespace prpb::util
