#include "util/cli.hpp"

#include <cstdio>

#include "util/error.hpp"
#include "util/parse.hpp"

namespace prpb::util {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_option(const std::string& name, const std::string& doc,
                           const std::string& default_value) {
  require(!options_.contains(name), "ArgParser: duplicate option --" + name);
  options_[name] = Option{doc, default_value, /*is_flag=*/false, false};
  order_.push_back(name);
}

void ArgParser::add_flag(const std::string& name, const std::string& doc) {
  require(!options_.contains(name), "ArgParser: duplicate flag --" + name);
  options_[name] = Option{doc, "", /*is_flag=*/true, false};
  order_.push_back(name);
}

ArgParser::Option& ArgParser::find(const std::string& name) {
  const auto it = options_.find(name);
  require(it != options_.end(), "ArgParser: unknown option --" + name);
  return it->second;
}

const ArgParser::Option& ArgParser::find(const std::string& name) const {
  const auto it = options_.find(name);
  require(it != options_.end(), "ArgParser: unknown option --" + name);
  return it->second;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> inline_value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    auto& opt = find(name);
    if (opt.is_flag) {
      require(!inline_value, "flag --" + name + " does not take a value");
      opt.seen = true;
      continue;
    }
    if (inline_value) {
      opt.value = *inline_value;
    } else {
      require(i + 1 < argc, "option --" + name + " requires a value");
      opt.value = argv[++i];
    }
    opt.seen = true;
  }
  return true;
}

std::string ArgParser::get(const std::string& name) const {
  const auto& opt = find(name);
  require(!opt.is_flag, "--" + name + " is a flag; use get_flag");
  return opt.value;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  const auto v = parse_i64_full(get(name));
  require(v.has_value(), "--" + name + " expects an integer");
  return *v;
}

double ArgParser::get_double(const std::string& name) const {
  const auto v = parse_f64_full(get(name));
  require(v.has_value(), "--" + name + " expects a number");
  return *v;
}

bool ArgParser::get_flag(const std::string& name) const {
  const auto& opt = find(name);
  require(opt.is_flag, "--" + name + " takes a value; use get");
  return opt.seen;
}

std::string ArgParser::help() const {
  std::string out = program_ + " — " + description_ + "\n\nOptions:\n";
  for (const auto& name : order_) {
    const auto& opt = options_.at(name);
    out += "  --" + name;
    if (!opt.is_flag) out += " <value>";
    out += "\n      " + opt.doc;
    if (!opt.is_flag && !opt.value.empty())
      out += " (default: " + opt.value + ")";
    out += "\n";
  }
  out += "  --help\n      Show this message.\n";
  return out;
}

}  // namespace prpb::util
