#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace prpb::util {

JsonWriter::JsonWriter() {
  stack_.push_back(Frame::kRoot);
  has_items_.push_back(false);
}

std::string JsonWriter::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(ch));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
}

void JsonWriter::key_prefix(std::string_view key) {
  ensure(stack_.back() == Frame::kObject,
         "JsonWriter: keyed item outside an object");
  comma();
  out_ += '"';
  out_ += escape(key);
  out_ += "\":";
}

void JsonWriter::raw_value(const std::string& text) { out_ += text; }

void JsonWriter::begin_object() {
  ensure(stack_.back() != Frame::kObject,
         "JsonWriter: unkeyed object inside an object");
  comma();
  out_ += '{';
  stack_.push_back(Frame::kObject);
  has_items_.push_back(false);
}

void JsonWriter::begin_object(std::string_view key) {
  key_prefix(key);
  out_ += '{';
  stack_.push_back(Frame::kObject);
  has_items_.push_back(false);
}

void JsonWriter::end_object() {
  ensure(stack_.back() == Frame::kObject, "JsonWriter: mismatched }");
  out_ += '}';
  stack_.pop_back();
  has_items_.pop_back();
}

void JsonWriter::begin_array() {
  ensure(stack_.back() != Frame::kObject,
         "JsonWriter: unkeyed array inside an object");
  comma();
  out_ += '[';
  stack_.push_back(Frame::kArray);
  has_items_.push_back(false);
}

void JsonWriter::begin_array(std::string_view key) {
  key_prefix(key);
  out_ += '[';
  stack_.push_back(Frame::kArray);
  has_items_.push_back(false);
}

void JsonWriter::end_array() {
  ensure(stack_.back() == Frame::kArray, "JsonWriter: mismatched ]");
  out_ += ']';
  stack_.pop_back();
  has_items_.pop_back();
}

namespace {
std::string number_text(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no inf/nan
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}
}  // namespace

void JsonWriter::field(std::string_view key, std::string_view value) {
  key_prefix(key);
  raw_value('"' + escape(value) + '"');
}

void JsonWriter::field(std::string_view key, const char* value) {
  field(key, std::string_view(value));
}

void JsonWriter::field(std::string_view key, double value) {
  key_prefix(key);
  raw_value(number_text(value));
}

void JsonWriter::field(std::string_view key, std::int64_t value) {
  key_prefix(key);
  raw_value(std::to_string(value));
}

void JsonWriter::field(std::string_view key, std::uint64_t value) {
  key_prefix(key);
  raw_value(std::to_string(value));
}

void JsonWriter::field(std::string_view key, bool value) {
  key_prefix(key);
  raw_value(value ? "true" : "false");
}

void JsonWriter::value(std::string_view text) {
  ensure(stack_.back() == Frame::kArray,
         "JsonWriter: bare value outside an array");
  comma();
  raw_value('"' + escape(text) + '"');
}

void JsonWriter::value(double number) {
  ensure(stack_.back() == Frame::kArray,
         "JsonWriter: bare value outside an array");
  comma();
  raw_value(number_text(number));
}

void JsonWriter::value(std::int64_t number) {
  ensure(stack_.back() == Frame::kArray,
         "JsonWriter: bare value outside an array");
  comma();
  raw_value(std::to_string(number));
}

std::string JsonWriter::str() const {
  ensure(stack_.size() == 1, "JsonWriter: unclosed containers");
  return out_;
}

// ---- JsonValue parser -------------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw IoError("json parse error at offset " + std::to_string(pos_) +
                  ": " + why);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char ch) {
    if (pos_ >= text_.size() || text_[pos_] != ch) {
      fail(std::string("expected '") + ch + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    if (depth_ > kMaxDepth) fail("nesting too deep");
    skip_whitespace();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue value;
        value.type_ = JsonValue::Type::kString;
        value.string_ = parse_string();
        return value;
      }
      case 't':
      case 'f': {
        JsonValue value;
        value.type_ = JsonValue::Type::kBool;
        if (consume_literal("true")) {
          value.bool_ = true;
        } else if (consume_literal("false")) {
          value.bool_ = false;
        } else {
          fail("invalid literal");
        }
        return value;
      }
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue value;
    value.type_ = JsonValue::Type::kObject;
    ++depth_;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return value;
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      value.members_.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      break;
    }
    --depth_;
    return value;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue value;
    value.type_ = JsonValue::Type::kArray;
    ++depth_;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return value;
    }
    for (;;) {
      value.array_.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      break;
    }
    --depth_;
    return value;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char ch = text_[pos_++];
      if (ch == '"') return out;
      if (static_cast<unsigned char>(ch) < 0x20) {
        fail("unescaped control character in string");
      }
      if (ch != '\\') {
        out += ch;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("invalid escape");
      }
    }
  }

  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char ch = text_[pos_++];
      code <<= 4;
      if (ch >= '0' && ch <= '9') {
        code |= static_cast<unsigned>(ch - '0');
      } else if (ch >= 'a' && ch <= 'f') {
        code |= static_cast<unsigned>(ch - 'a' + 10);
      } else if (ch >= 'A' && ch <= 'F') {
        code |= static_cast<unsigned>(ch - 'A' + 10);
      } else {
        fail("invalid \\u escape digit");
      }
    }
    // UTF-8 encode the BMP code point; surrogate pairs are not combined
    // (our writer never emits them — it escapes only control characters).
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    JsonValue value;
    value.type_ = JsonValue::Type::kNumber;
    value.number_ = parsed;
    return value;
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

bool JsonValue::boolean() const {
  ensure(is_bool(), "JsonValue: not a bool");
  return bool_;
}

double JsonValue::number() const {
  ensure(is_number(), "JsonValue: not a number");
  return number_;
}

const std::string& JsonValue::string() const {
  ensure(is_string(), "JsonValue: not a string");
  return string_;
}

const JsonValue::Array& JsonValue::array() const {
  ensure(is_array(), "JsonValue: not an array");
  return array_;
}

const JsonValue::Members& JsonValue::members() const {
  ensure(is_object(), "JsonValue: not an object");
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* value = find(key);
  ensure(value != nullptr,
         "JsonValue: missing member '" + std::string(key) + "'");
  return *value;
}

}  // namespace prpb::util
