#include "util/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace prpb::util {

JsonWriter::JsonWriter() {
  stack_.push_back(Frame::kRoot);
  has_items_.push_back(false);
}

std::string JsonWriter::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(ch));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
}

void JsonWriter::key_prefix(std::string_view key) {
  ensure(stack_.back() == Frame::kObject,
         "JsonWriter: keyed item outside an object");
  comma();
  out_ += '"';
  out_ += escape(key);
  out_ += "\":";
}

void JsonWriter::raw_value(const std::string& text) { out_ += text; }

void JsonWriter::begin_object() {
  ensure(stack_.back() != Frame::kObject,
         "JsonWriter: unkeyed object inside an object");
  comma();
  out_ += '{';
  stack_.push_back(Frame::kObject);
  has_items_.push_back(false);
}

void JsonWriter::begin_object(std::string_view key) {
  key_prefix(key);
  out_ += '{';
  stack_.push_back(Frame::kObject);
  has_items_.push_back(false);
}

void JsonWriter::end_object() {
  ensure(stack_.back() == Frame::kObject, "JsonWriter: mismatched }");
  out_ += '}';
  stack_.pop_back();
  has_items_.pop_back();
}

void JsonWriter::begin_array() {
  ensure(stack_.back() != Frame::kObject,
         "JsonWriter: unkeyed array inside an object");
  comma();
  out_ += '[';
  stack_.push_back(Frame::kArray);
  has_items_.push_back(false);
}

void JsonWriter::begin_array(std::string_view key) {
  key_prefix(key);
  out_ += '[';
  stack_.push_back(Frame::kArray);
  has_items_.push_back(false);
}

void JsonWriter::end_array() {
  ensure(stack_.back() == Frame::kArray, "JsonWriter: mismatched ]");
  out_ += ']';
  stack_.pop_back();
  has_items_.pop_back();
}

namespace {
std::string number_text(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no inf/nan
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}
}  // namespace

void JsonWriter::field(std::string_view key, std::string_view value) {
  key_prefix(key);
  raw_value('"' + escape(value) + '"');
}

void JsonWriter::field(std::string_view key, const char* value) {
  field(key, std::string_view(value));
}

void JsonWriter::field(std::string_view key, double value) {
  key_prefix(key);
  raw_value(number_text(value));
}

void JsonWriter::field(std::string_view key, std::int64_t value) {
  key_prefix(key);
  raw_value(std::to_string(value));
}

void JsonWriter::field(std::string_view key, std::uint64_t value) {
  key_prefix(key);
  raw_value(std::to_string(value));
}

void JsonWriter::field(std::string_view key, bool value) {
  key_prefix(key);
  raw_value(value ? "true" : "false");
}

void JsonWriter::value(std::string_view text) {
  ensure(stack_.back() == Frame::kArray,
         "JsonWriter: bare value outside an array");
  comma();
  raw_value('"' + escape(text) + '"');
}

void JsonWriter::value(double number) {
  ensure(stack_.back() == Frame::kArray,
         "JsonWriter: bare value outside an array");
  comma();
  raw_value(number_text(number));
}

void JsonWriter::value(std::int64_t number) {
  ensure(stack_.back() == Frame::kArray,
         "JsonWriter: bare value outside an array");
  comma();
  raw_value(std::to_string(number));
}

std::string JsonWriter::str() const {
  ensure(stack_.size() == 1, "JsonWriter: unclosed containers");
  return out_;
}

}  // namespace prpb::util
