#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace prpb::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_line(LogLevel level, std::string_view msg) {
  if (level < log_level()) return;
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[prpb %s] %.*s\n", level_name(level),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace prpb::util
