// Fixed-size thread pool with a blocking task queue, plus parallel_for /
// parallel_for_chunks helpers that block until all iterations complete.
// Used by the `parallel` backend and the parallel merge sort; with one
// hardware thread everything degrades gracefully to serial execution.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace prpb::util {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the returned future reports completion/exception.
  std::future<void> submit(std::function<void()> task);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs body(i) for i in [begin, end) across `pool`, splitting the range into
/// roughly 4×threads chunks. Blocks until done; rethrows the first exception.
void parallel_for(ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
                  const std::function<void(std::uint64_t)>& body);

/// Runs body(chunk_begin, chunk_end) once per chunk. Lower overhead than
/// parallel_for when the body can vectorize over a range.
void parallel_for_chunks(
    ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
    const std::function<void(std::uint64_t, std::uint64_t)>& body);

}  // namespace prpb::util
