// Minimal leveled logger. PRPB libraries log sparingly (kernel boundaries,
// fallback decisions); benches and examples raise the level for progress.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace prpb::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Writes one formatted line to stderr if `level` passes the threshold.
void log_line(LogLevel level, std::string_view msg);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_line(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_line(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_line(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_line(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace prpb::util
