#include "util/threadpool.hpp"

#include <algorithm>

namespace prpb::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions land in the future
  }
}

void parallel_for_chunks(
    ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
    const std::function<void(std::uint64_t, std::uint64_t)>& body) {
  if (begin >= end) return;
  const std::uint64_t total = end - begin;
  const std::uint64_t chunks =
      std::min<std::uint64_t>(total, std::max<std::uint64_t>(1, pool.size() * 4));
  const std::uint64_t chunk = (total + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::uint64_t lo = begin; lo < end; lo += chunk) {
    const std::uint64_t hi = std::min(end, lo + chunk);
    futures.push_back(pool.submit([&body, lo, hi] { body(lo, hi); }));
  }
  for (auto& future : futures) future.get();  // rethrows first failure
}

void parallel_for(ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
                  const std::function<void(std::uint64_t)>& body) {
  parallel_for_chunks(pool, begin, end,
                      [&body](std::uint64_t lo, std::uint64_t hi) {
                        for (std::uint64_t i = lo; i < hi; ++i) body(i);
                      });
}

}  // namespace prpb::util
