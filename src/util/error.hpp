// Error types and invariant-checking helpers used across all PRPB modules.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace prpb::util {

/// Base class for all errors thrown by PRPB libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when user-supplied configuration is invalid (bad scale, bad flag...).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Raised on filesystem / file-format failures.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Raised for I/O failures that are expected to succeed when retried
/// (interrupted transfers, injected transient faults). The runner's
/// RetryPolicy treats exactly this type as retryable; every other error is
/// permanent.
class TransientIoError : public IoError {
 public:
  explicit TransientIoError(const std::string& what) : IoError(what) {}
};

/// Raised when stored stage bytes provably diverge from what was written
/// (torn write, truncated shard, bit rot detected by checkpoint
/// validation). Permanent within a run: recovery is re-running the
/// producing kernel, e.g. via --resume.
class CorruptionError : public IoError {
 public:
  explicit CorruptionError(const std::string& what) : IoError(what) {}
};

/// Raised when a kernel's mathematical pre/post-condition is violated.
class InvariantError : public Error {
 public:
  explicit InvariantError(const std::string& what) : Error(what) {}
};

/// Raised when the pipeline harness cannot run as requested (for example a
/// required input stage is missing when kernel 0 is skipped).
class PipelineError : public Error {
 public:
  explicit PipelineError(const std::string& what) : Error(what) {}
};

/// Throws ConfigError with `msg` when `cond` is false.
inline void require(bool cond, std::string_view msg) {
  if (!cond) throw ConfigError(std::string(msg));
}

/// Throws InvariantError with `msg` when `cond` is false.
inline void ensure(bool cond, std::string_view msg) {
  if (!cond) throw InvariantError(std::string(msg));
}

/// Throws IoError with `msg` when `cond` is false.
inline void io_require(bool cond, std::string_view msg) {
  if (!cond) throw IoError(std::string(msg));
}

}  // namespace prpb::util
