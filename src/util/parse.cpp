#include "util/parse.hpp"

#include <charconv>
#include <cstring>
#include <limits>

namespace prpb::util {

std::optional<std::uint64_t> parse_u64(std::string_view s, std::size_t& pos) {
  if (pos >= s.size() || s[pos] < '0' || s[pos] > '9') return std::nullopt;
  std::uint64_t v = 0;
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  std::size_t i = pos;
  for (; i < s.size(); ++i) {
    const char ch = s[i];
    if (ch < '0' || ch > '9') break;
    const auto digit = static_cast<std::uint64_t>(ch - '0');
    if (v > (kMax - digit) / 10) return std::nullopt;  // overflow
    v = v * 10 + digit;
  }
  pos = i;
  return v;
}

std::optional<std::uint64_t> parse_u64_full(std::string_view s) {
  std::size_t pos = 0;
  const auto v = parse_u64(s, pos);
  if (!v || pos != s.size()) return std::nullopt;
  return v;
}

std::optional<std::int64_t> parse_i64_full(std::string_view s) {
  std::int64_t v = 0;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, v, 10);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return v;
}

std::optional<double> parse_f64_full(std::string_view s) {
  double v = 0.0;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return v;
}

std::size_t format_u64(char* buf, std::uint64_t v) {
  char tmp[20];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + (v % 10));
    v /= 10;
  } while (v != 0);
  for (std::size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

std::size_t append_u64(std::string& out, std::uint64_t v) {
  char buf[20];
  const std::size_t n = format_u64(buf, v);
  out.append(buf, n);
  return n;
}

std::optional<std::pair<std::string_view, std::string_view>> split_tab(
    std::string_view line) {
  const std::size_t tab = line.find('\t');
  if (tab == std::string_view::npos) return std::nullopt;
  return std::make_pair(line.substr(0, tab), line.substr(tab + 1));
}

std::string_view strip_cr(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

}  // namespace prpb::util
