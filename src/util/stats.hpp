// Summary statistics and trend fitting for benchmark measurements.
// Figure benches report the median of repeated trials; EXPERIMENTS.md's
// scaling claims use the log-log slope fit (edges/sec vs M).
#pragma once

#include <cstddef>
#include <vector>

namespace prpb::util {

struct Summary {
  std::size_t count = 0;
  double mean = 0;
  double median = 0;
  double stddev = 0;  ///< population standard deviation
  double min = 0;
  double max = 0;
};

/// Summary of a sample; throws ConfigError when empty.
Summary summarize(std::vector<double> values);

/// Median alone (throws on empty).
double median(std::vector<double> values);

/// Median absolute deviation: median(|x_i - median(x)|). The robust noise
/// scale the bench-trajectory regression bands are built from (throws on
/// empty; 0 for a single-element sample).
double median_abs_deviation(std::vector<double> values);

struct LinearFit {
  double slope = 0;
  double intercept = 0;
  double r_squared = 0;  ///< coefficient of determination
};

/// Ordinary least squares y = slope*x + intercept. Requires >= 2 points.
LinearFit linear_fit(const std::vector<double>& x,
                     const std::vector<double>& y);

/// Fit of log(y) vs log(x) — the slope is the power-law exponent.
/// All values must be positive.
LinearFit log_log_fit(const std::vector<double>& x,
                      const std::vector<double>& y);

}  // namespace prpb::util
