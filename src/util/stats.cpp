#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace prpb::util {

Summary summarize(std::vector<double> values) {
  require(!values.empty(), "summarize: empty sample");
  Summary s;
  s.count = values.size();
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  const std::size_t half = values.size() / 2;
  s.median = values.size() % 2 == 1
                 ? values[half]
                 : 0.5 * (values[half - 1] + values[half]);
  double sum = 0;
  for (const double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  double var = 0;
  for (const double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(values.size()));
  return s;
}

double median(std::vector<double> values) {
  return summarize(std::move(values)).median;
}

double median_abs_deviation(std::vector<double> values) {
  const double center = median(values);
  for (double& v : values) v = std::abs(v - center);
  return median(std::move(values));
}

LinearFit linear_fit(const std::vector<double>& x,
                     const std::vector<double>& y) {
  require(x.size() == y.size(), "linear_fit: size mismatch");
  require(x.size() >= 2, "linear_fit: need at least two points");
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  require(denom != 0.0, "linear_fit: degenerate x values");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (fit.slope * x[i] + fit.intercept);
    ss_res += e * e;
  }
  fit.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

LinearFit log_log_fit(const std::vector<double>& x,
                      const std::vector<double>& y) {
  require(x.size() == y.size(), "log_log_fit: size mismatch");
  std::vector<double> lx(x.size());
  std::vector<double> ly(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    require(x[i] > 0 && y[i] > 0, "log_log_fit: values must be positive");
    lx[i] = std::log(x[i]);
    ly[i] = std::log(y[i]);
  }
  return linear_fit(lx, ly);
}

}  // namespace prpb::util
