// Default K3 algorithm dispatch shared by every backend (see
// core/algorithm.hpp). "pagerank" routes through the backend's own
// kernel3() virtual so the paper's fixed pipeline keeps its per-niche
// implementation (and stays bit-identical to the golden suite); the other
// algorithms fall back to the shared sparse/ reference implementations,
// which makes their outputs bit-identical across backends by
// construction. Backends with a native formulation override (see
// GraphBlasBackend::run_algorithm).
#include <algorithm>

#include "core/backend.hpp"
#include "core/checksum.hpp"
#include "sparse/algorithms.hpp"
#include "sparse/csr_compressed.hpp"
#include "util/error.hpp"

namespace prpb::core {

namespace {

int bfs_depth(const std::vector<std::int64_t>& levels) {
  std::int64_t depth = 0;
  for (const std::int64_t level : levels) depth = std::max(depth, level);
  return static_cast<int>(depth);
}

}  // namespace

AlgorithmResult PipelineBackend::run_algorithm(const KernelContext& ctx,
                                               const sparse::CsrMatrix& matrix,
                                               const std::string& algorithm) {
  AlgorithmResult result;
  result.algorithm = algorithm;
  // --csr compressed: the reference algorithms run on the matrix
  // round-tripped through the delta-varint form. Encode → decode is exact,
  // so levels/labels/ranks (and their checksums) are unchanged while the
  // codec still sits on the pipeline path for every configured algorithm.
  // The "pagerank" branch compresses inside the backend's kernel3 instead.
  sparse::CsrMatrix roundtrip;
  const sparse::CsrMatrix& m =
      ctx.config.csr == "compressed" && algorithm != "pagerank"
          ? (roundtrip =
                 sparse::CompressedCsrMatrix::from_csr(matrix).to_csr())
          : matrix;
  if (algorithm == "pagerank") {
    result.implementation = name() + "-kernel3";
    result.ranks = kernel3(ctx, matrix);
    result.iterations = ctx.config.iterations;
    result.work_edges = static_cast<std::uint64_t>(ctx.config.iterations) *
                        ctx.config.num_edges();
  } else if (algorithm == "pagerank_dopt") {
    sparse::PageRankConfig pr;
    pr.iterations = ctx.config.iterations;
    pr.damping = ctx.config.damping;
    pr.seed = ctx.config.seed;
    sparse::DirectionStats stats;
    result.implementation = "reference-pushpull";
    result.ranks = sparse::pagerank_push_pull(m, pr,
                                              sparse::SpmvDirection::kAuto,
                                              &stats);
    result.iterations = stats.push_iterations + stats.pull_iterations;
    result.work_edges = static_cast<std::uint64_t>(ctx.config.iterations) *
                        ctx.config.num_edges();
  } else if (algorithm == "bfs") {
    result.implementation = "reference-csr";
    if (m.rows() > 0) {
      result.bfs_source = sparse::bfs_default_source(m);
      result.levels = sparse::bfs_levels(m, result.bfs_source);
      result.iterations = bfs_depth(result.levels);
    }
    result.work_edges = m.nnz();
  } else if (algorithm == "cc") {
    result.implementation = "reference-unionfind";
    result.labels = sparse::connected_components(m);
    result.iterations = 1;
    result.work_edges = m.nnz();
  } else {
    std::string valid;
    for (const auto& known : algorithm_names()) {
      if (!valid.empty()) valid += ", ";
      valid += known;
    }
    throw util::ConfigError{"unknown algorithm '" + algorithm +
                            "' (valid values: " + valid + ")"};
  }
  result.checksum = algorithm_checksum(result);
  return result;
}

}  // namespace prpb::core
