#include "core/backend_dataframe.hpp"

#include "df/csv.hpp"
#include "df/dataframe.hpp"
#include "gen/generator.hpp"
#include "sparse/filter.hpp"
#include "sparse/pagerank.hpp"
#include "util/error.hpp"

namespace prpb::core {

namespace {
df::CsvSchema edge_schema() {
  return df::CsvSchema{{"u", "v"}, {df::DType::kInt64, df::DType::kInt64}};
}

df::DataFrame edges_to_frame(const gen::EdgeList& edges) {
  std::vector<std::int64_t> u(edges.size());
  std::vector<std::int64_t> v(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    u[i] = static_cast<std::int64_t>(edges[i].u);
    v[i] = static_cast<std::int64_t>(edges[i].v);
  }
  df::DataFrame frame;
  frame.add_column("u", df::Column(std::move(u)));
  frame.add_column("v", df::Column(std::move(v)));
  return frame;
}
}  // namespace

void DataFrameBackend::kernel0(const KernelContext& ctx) {
  const PipelineConfig& config = ctx.config;
  // Graph generation happens in the "C extension" (the native generator,
  // the same way a Python harness would call a compiled Graph500 module);
  // the frame build and the delimited write are dataframe work.
  const auto generator = gen::make_generator(config.generator, config.scale,
                                             config.edge_factor, config.seed);
  const df::DataFrame frame = edges_to_frame(generator->generate_all());
  df::write_edge_stage(frame, ctx.store, ctx.out_stage, config.num_files,
                       ctx.codec(io::Codec::kGeneric));
}

void DataFrameBackend::kernel1(const KernelContext& ctx) {
  const PipelineConfig& config = ctx.config;
  const df::DataFrame frame = df::read_edge_stage(
      ctx.store, ctx.in_stage, edge_schema(), ctx.codec(io::Codec::kGeneric));
  const std::vector<std::string> keys =
      config.sort_key == sort::SortKey::kStartEnd
          ? std::vector<std::string>{"u", "v"}
          : std::vector<std::string>{"u"};
  const df::DataFrame sorted = frame.sort_values(keys);
  df::write_edge_stage(sorted, ctx.store, ctx.out_stage, config.num_files,
                       ctx.codec(io::Codec::kGeneric));
}

sparse::CsrMatrix DataFrameBackend::kernel2(const KernelContext& ctx) {
  const PipelineConfig& config = ctx.config;
  const df::DataFrame frame = df::read_edge_stage(
      ctx.store, ctx.in_stage, edge_schema(), ctx.codec(io::Codec::kGeneric));
  // df.groupby(["u","v"]).size() -> COO triplets with duplicate counts,
  // then the sparse substrate takes over (scipy.sparse analogue).
  const df::DataFrame triplets = frame.groupby_count({"u", "v"}, "count");
  const auto& u = triplets.col("u").i64();
  const auto& v = triplets.col("v").i64();
  const auto& counts = triplets.col("count").i64();
  std::vector<std::uint64_t> rows(u.size());
  std::vector<std::uint64_t> cols(v.size());
  std::vector<double> vals(counts.size());
  for (std::size_t i = 0; i < u.size(); ++i) {
    util::ensure(u[i] >= 0 && v[i] >= 0,
                 "dataframe kernel2: negative vertex id");
    rows[i] = static_cast<std::uint64_t>(u[i]);
    cols[i] = static_cast<std::uint64_t>(v[i]);
    vals[i] = static_cast<double>(counts[i]);
  }
  const std::uint64_t n = config.num_vertices();
  sparse::CsrMatrix a =
      sparse::CsrMatrix::from_triplets(rows, cols, vals, n, n);
  sparse::apply_filter(a, nullptr);
  return a;
}

std::vector<double> DataFrameBackend::kernel3(const KernelContext& ctx,
                                              const sparse::CsrMatrix& matrix) {
  const PipelineConfig& config = ctx.config;
  util::require(matrix.rows() == config.num_vertices(),
                "kernel3: matrix size does not match N = 2^scale");
  sparse::PageRankConfig pr;
  pr.iterations = config.iterations;
  pr.damping = config.damping;
  pr.seed = config.seed;
  pr.observer = ctx.k3_observer();
  return sparse::pagerank(matrix, pr);
}

}  // namespace prpb::core
