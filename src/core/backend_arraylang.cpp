#include "core/backend_arraylang.hpp"

#include "interp/interpreter.hpp"
#include "util/error.hpp"

namespace prpb::core {

// Kernel programs. These mirror the paper's Matlab statements; `crand` is
// the counter-based uniform source shared with the native generator, so the
// generated graph is bit-identical across backends.
const char* ArrayLangBackend::kernel0_source() {
  return R"(% kernel 0: Graph500 Kronecker generation + edge-file write
u = zeros(M)
v = zeros(M)
kpow = 1
for level = 1:scale
  r1 = crand(2 * (level - 1), M, seed)
  r2 = crand(2 * (level - 1) + 1, M, seed)
  ubit = r1 > ab
  vbit = r2 > (cnorm .* ubit + anorm .* (1 - ubit))
  u = u + kpow .* ubit
  v = v + kpow .* vbit
  kpow = kpow * 2
end
u = scramble(u, scale, seed)
v = scramble(v, scale, seed)
save_edges(outdir, nfiles, u, v)
)";
}

const char* ArrayLangBackend::kernel1_source() {
  return R"(% kernel 1: read, sort by start vertex, rewrite
e = load_edges(indir)
u = stride(e, 2, 1)
v = stride(e, 2, 2)
idx = sortperm2(u, vkey)
u = permute(u, idx)
v = permute(v, idx)
save_edges(outdir, nfiles, u, v)
)";
}

const char* ArrayLangBackend::kernel2_source() {
  return R"(% kernel 2: adjacency construction, degree filtering, row normalize
e = load_edges(indir)
u = stride(e, 2, 1)
v = stride(e, 2, 2)
A = sparse(u, v, 1, N, N)
din = sum(A, 1)
mask = (din == max(din)) + (din == 1)
A = zerocols(A, mask)
dout = sum(A, 2)
A = scalerows(A, dout)
)";
}

const char* ArrayLangBackend::kernel3_source() {
  return R"(% kernel 3: fixed-iteration PageRank, row-vector form
r = pr_init(N, seed)
for it = 1:iters
  s = sum(r)
  r = (c .* r) * A + (1 - c) .* s ./ N
end
)";
}

void ArrayLangBackend::kernel0(const KernelContext& ctx) {
  const PipelineConfig& config = ctx.config;
  interp::Interpreter vm;
  vm.set_stage_store(&ctx.store);
  vm.set_stage_codec(&ctx.codec(io::Codec::kGeneric));
  vm.set("scale", static_cast<double>(config.scale));
  vm.set("seed", static_cast<double>(config.seed));
  vm.set("nfiles", static_cast<double>(config.num_files));
  vm.set("outdir", ctx.out_stage);
  if (config.generator == "kronecker") {
    // Graph500 initiator constants (A=0.57, B=0.19, C=0.19, D=0.05).
    vm.set("M", static_cast<double>(config.num_edges()));
    vm.set("ab", 0.57 + 0.19);
    vm.set("anorm", 0.57 / (0.57 + 0.19));
    vm.set("cnorm", 0.19 / (0.19 + 0.05));
    vm.run(kernel0_source());
    return;
  }
  // Other generators have no closed-form arraylang kernel; generate through
  // the builtin and keep the interpreted file write.
  vm.set("genname", config.generator);
  vm.set("ef", static_cast<double>(config.edge_factor));
  vm.run(R"(
e = gen_edges(genname, scale, ef, seed)
u = stride(e, 2, 1)
v = stride(e, 2, 2)
save_edges(outdir, nfiles, u, v)
)");
}

void ArrayLangBackend::kernel1(const KernelContext& ctx) {
  const PipelineConfig& config = ctx.config;
  interp::Interpreter vm;
  vm.set_stage_store(&ctx.store);
  vm.set_stage_codec(&ctx.codec(io::Codec::kGeneric));
  vm.set("indir", ctx.in_stage);
  vm.set("outdir", ctx.out_stage);
  vm.set("nfiles", static_cast<double>(config.num_files));
  // vkey selects the tie-break column: v for canonical (u, v) order, u
  // itself (all ties, stable) when only the start vertex is ordered.
  vm.run("e = load_edges(indir)\n"
         "u = stride(e, 2, 1)\n"
         "v = stride(e, 2, 2)\n");
  vm.set("vkey", config.sort_key == sort::SortKey::kStartEnd
                     ? vm.get("v")
                     : vm.get("u"));
  vm.run("idx = sortperm2(u, vkey)\n"
         "u = permute(u, idx)\n"
         "v = permute(v, idx)\n"
         "save_edges(outdir, nfiles, u, v)\n");
}

sparse::CsrMatrix ArrayLangBackend::kernel2(const KernelContext& ctx) {
  interp::Interpreter vm;
  vm.set_stage_store(&ctx.store);
  vm.set_stage_codec(&ctx.codec(io::Codec::kGeneric));
  vm.set("indir", ctx.in_stage);
  vm.set("N", static_cast<double>(ctx.config.num_vertices()));
  vm.run(kernel2_source());
  return vm.get("A").matrix();
}

std::vector<double> ArrayLangBackend::kernel3(const KernelContext& ctx,
                                              const sparse::CsrMatrix& matrix) {
  const PipelineConfig& config = ctx.config;
  util::require(matrix.rows() == config.num_vertices(),
                "kernel3: matrix size does not match N = 2^scale");
  // No per-iteration telemetry here: the loop runs inside the interpreted
  // script, which has no callback surface (k3_iterations stays empty).
  interp::Interpreter vm;
  vm.set("A", matrix);
  vm.set("N", static_cast<double>(matrix.rows()));
  vm.set("c", config.damping);
  vm.set("iters", static_cast<double>(config.iterations));
  vm.set("seed", static_cast<double>(config.seed));
  vm.run(kernel3_source());
  return vm.get("r").array();
}

}  // namespace prpb::core
