// Machine-readable run reports: serializes a pipeline run (configuration,
// per-kernel metrics, output checksums, optional validation) as JSON, so
// external tooling can track benchmark results across runs and systems.
#pragma once

#include <optional>
#include <string>

#include "core/config.hpp"
#include "core/runner.hpp"
#include "core/validate.hpp"

namespace prpb::core {

struct ReportOptions {
  bool include_checksums = true;  ///< rank digest + matrix fingerprint
};

/// Renders a full run report as a JSON document.
std::string run_report_json(const PipelineConfig& config,
                            const PipelineResult& result,
                            const std::optional<EigenCheck>& check = {},
                            const ReportOptions& options = {});

}  // namespace prpb::core
