#pragma once

#include "core/backend.hpp"
#include "sparse/filter.hpp"

namespace prpb::core {

/// Tuned serial C++ backend (see backend.hpp for the backend contract).
class NativeBackend final : public PipelineBackend {
 public:
  [[nodiscard]] std::string name() const override { return "native"; }

  void kernel0(const KernelContext& ctx) override;
  void kernel1(const KernelContext& ctx) override;
  sparse::CsrMatrix kernel2(const KernelContext& ctx) override;
  std::vector<double> kernel3(const KernelContext& ctx,
                              const sparse::CsrMatrix& matrix) override;

  /// Filter statistics from the most recent kernel2 call.
  [[nodiscard]] const sparse::FilterReport& filter_report() const {
    return filter_report_;
  }

 private:
  sparse::FilterReport filter_report_;
};

}  // namespace prpb::core
