// Backend interface: one implementation of the four pipeline kernels.
//
// The paper evaluates the same mathematically fixed kernels across six
// language stacks. This repo's backends are C++ implementations occupying
// the same software-stack niches (see DESIGN.md §2):
//   native     — tuned C++ (the paper's C++ entry)
//   parallel   — thread-parallel native (paper's "future work" direction)
//   graphblas  — kernels 2-3 via the mini-GraphBLAS layer
//   arraylang  — interpreted vectorized array language (Matlab/Octave niche)
//   dataframe  — typed dataframe engine (Python-with-Pandas niche)
//
// Kernels receive a KernelContext — configuration, the StageStore holding
// the stages, the runner-assigned stage names, and a metrics sink — never
// raw filesystem paths. Storage (dir vs. mem) is therefore a harness
// decision invisible to kernel code.
//
// Every backend must produce identical mathematical results from the same
// PipelineConfig: the same edge stage after K0, the same sorted stage after
// K1, the same normalized matrix after K2 and the same r after K3 (up to fp
// tolerance) — on every storage tier. Integration tests enforce this
// pairwise and across stores.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/algorithm.hpp"
#include "core/config.hpp"
#include "core/kernel_context.hpp"
#include "sparse/csr.hpp"

namespace prpb::core {

class PipelineBackend {
 public:
  virtual ~PipelineBackend() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Kernel 0: generate the graph and write TSV edge shards to
  /// ctx.out_stage.
  virtual void kernel0(const KernelContext& ctx) = 0;

  /// Kernel 1: read ctx.in_stage, sort by start vertex, write to
  /// ctx.out_stage (spilling through ctx.temp_stage when the memory budget
  /// forces the external sort).
  virtual void kernel1(const KernelContext& ctx) = 0;

  /// Kernel 2: read ctx.in_stage, build + filter + normalize the adjacency
  /// matrix.
  virtual sparse::CsrMatrix kernel2(const KernelContext& ctx) = 0;

  /// Kernel 3: fixed-iteration PageRank on the kernel-2 matrix.
  virtual std::vector<double> kernel3(const KernelContext& ctx,
                                      const sparse::CsrMatrix& matrix) = 0;

  /// Kernel-3 algorithm stage: run one canonical algorithm (see
  /// core/algorithm.hpp) over the kernel-2 matrix. The base implementation
  /// routes "pagerank" through kernel3() — so the paper's fixed pipeline
  /// stays bit-identical per backend — and every other algorithm through
  /// the shared sparse/ reference implementations (the documented fallback,
  /// bit-identical across backends by construction). Backends whose niche
  /// has a native formulation (e.g. graphblas) override per algorithm.
  virtual AlgorithmResult run_algorithm(const KernelContext& ctx,
                                        const sparse::CsrMatrix& matrix,
                                        const std::string& algorithm);
};

/// Factory. Known names: native, parallel, graphblas, arraylang, dataframe.
/// Throws ConfigError for unknown names.
std::unique_ptr<PipelineBackend> make_backend(const std::string& name);

/// All registered backend names, in canonical report order.
std::vector<std::string> backend_names();

}  // namespace prpb::core
