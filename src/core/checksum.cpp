#include "core/checksum.hpp"

#include <cmath>
#include <cstdio>

#include "io/edge_files.hpp"
#include "rand/rng.hpp"
#include "sparse/pagerank.hpp"

namespace prpb::core {

namespace {
std::uint64_t mix_pair(std::uint64_t a, std::uint64_t b) {
  return rnd::splitmix64(rnd::splitmix64(a) ^ (b * 0x9e3779b97f4a7c15ULL));
}

/// Quantizes a double to an integer lattice for tolerance-stable hashing.
std::uint64_t quantize(double value, double quantum) {
  return static_cast<std::uint64_t>(
      static_cast<std::int64_t>(std::llround(value / quantum)));
}
}  // namespace

std::uint64_t edge_multiset_hash(const gen::EdgeList& edges) {
  // Sum of per-edge hashes: commutative, so order never matters; 64-bit
  // wraparound keeps it a well-defined group operation.
  std::uint64_t acc = 0x5eed0f00dd0123ULL;
  for (const auto& edge : edges) acc += mix_pair(edge.u, edge.v);
  return acc;
}

std::uint64_t edge_sequence_hash(const gen::EdgeList& edges) {
  std::uint64_t acc = 0x0123456789abcdefULL;
  for (const auto& edge : edges) {
    acc = mix_pair(acc, mix_pair(edge.u, edge.v));
  }
  return acc;
}

StageChecksum stage_checksum(io::StageStore& store, const std::string& stage,
                             const io::StageCodec& codec) {
  StageChecksum checksum;
  checksum.sequence = 0x0123456789abcdefULL;
  checksum.multiset = 0x5eed0f00dd0123ULL;
  io::stream_all_edges(store, stage, codec,
                       [&checksum](const gen::EdgeList& batch) {
                         for (const auto& edge : batch) {
                           const std::uint64_t h = mix_pair(edge.u, edge.v);
                           checksum.multiset += h;
                           checksum.sequence =
                               mix_pair(checksum.sequence, h);
                           ++checksum.edges;
                         }
                       });
  return checksum;
}

StageChecksum stage_checksum(io::StageStore& store, const std::string& stage) {
  return stage_checksum(store, stage, io::tsv_codec(io::Codec::kFast));
}

StageChecksum stage_checksum(const std::filesystem::path& dir) {
  io::DirStageStore store;
  return stage_checksum(store, dir.string());
}

std::uint64_t matrix_fingerprint(const sparse::CsrMatrix& a, double quantum) {
  std::uint64_t acc = mix_pair(a.rows(), a.cols());
  acc = mix_pair(acc, a.nnz());
  for (std::uint64_t r = 0; r < a.rows(); ++r) {
    for (std::uint64_t k = a.row_ptr()[r]; k < a.row_ptr()[r + 1]; ++k) {
      acc = mix_pair(acc, mix_pair(r, a.col_idx()[k]));
      acc = mix_pair(acc, quantize(a.values()[k], quantum));
    }
  }
  return acc;
}

std::uint64_t rank_digest(const std::vector<double>& ranks, double quantum) {
  const std::vector<double> normalized = sparse::normalized1(ranks);
  std::uint64_t acc = mix_pair(0xdeadbeefULL, normalized.size());
  for (const double x : normalized) {
    acc = mix_pair(acc, quantize(x, quantum));
  }
  return acc;
}

std::uint64_t levels_digest(const std::vector<std::int64_t>& levels) {
  std::uint64_t acc = mix_pair(0xb5f5ca11ULL, levels.size());
  for (const std::int64_t level : levels) {
    acc = mix_pair(acc, static_cast<std::uint64_t>(level));
  }
  return acc;
}

std::uint64_t labels_digest(const std::vector<std::uint64_t>& labels) {
  std::uint64_t acc = mix_pair(0xcc1abe15ULL, labels.size());
  for (const std::uint64_t label : labels) acc = mix_pair(acc, label);
  return acc;
}

std::string algorithm_checksum(const AlgorithmResult& result) {
  if (!result.ranks.empty()) return digest_hex(rank_digest(result.ranks));
  if (!result.levels.empty()) {
    return digest_hex(
        mix_pair(levels_digest(result.levels), result.bfs_source));
  }
  return digest_hex(labels_digest(result.labels));
}

std::string digest_hex(std::uint64_t digest) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

}  // namespace prpb::core
