// The pluggable K3 algorithm stage (DESIGN.md §9).
//
// The paper fixes kernel 3 to PageRank; GAP-style benchmarking wants a
// small kernel *suite* over one shared graph representation. An
// AlgorithmResult is one algorithm's output over the kernel-2 CSR +
// backend matrix; PipelineBackend::run_algorithm (core/backend.hpp)
// dispatches a canonical algorithm name to the backend niche's own
// formulation where one exists, and to the shared sparse/ reference
// implementations — the documented fallback — everywhere else.
//
// Canonical algorithm names:
//   pagerank       — the paper's fixed-iteration PageRank, routed through
//                    kernel3() so it stays bit-identical to the fixed
//                    pipeline (golden suite intact)
//   pagerank_dopt  — direction-optimizing push/pull PageRank
//                    (sparse::pagerank_push_pull)
//   bfs            — BFS levels from a deterministic default source
//   cc             — weakly connected components, min-id labels
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace prpb::core {

/// Output of one K3 algorithm over the kernel-2 matrix. Exactly one of
/// ranks/levels/labels is populated, matching the algorithm family.
struct AlgorithmResult {
  std::string algorithm;       ///< canonical name ("pagerank", "bfs", ...)
  std::string implementation;  ///< code path that ran ("reference-csr",
                               ///< "grb-vxm", "native-kernel3", ...)
  std::vector<double> ranks;          ///< pagerank family
  std::vector<std::int64_t> levels;   ///< bfs (-1 = unreachable)
  std::vector<std::uint64_t> labels;  ///< cc (min vertex id per component)
  std::uint64_t bfs_source = 0;       ///< bfs only
  /// PageRank iterations, BFS depth (max level), or CC union rounds.
  int iterations = 0;
  /// Edge traversals for the edges/s metric: iterations·M for the
  /// pagerank family (the paper's kernel-3 accounting), nnz for bfs/cc
  /// (one structural traversal).
  std::uint64_t work_edges = 0;
  /// Canonical output digest (hex; see core/checksum.hpp). Quantized for
  /// ranks, exact for levels/labels. Filled by the runner.
  std::string checksum;

  [[nodiscard]] bool has_ranks() const { return !ranks.empty(); }
};

/// All canonical algorithm names, in report order.
std::vector<std::string> algorithm_names();

/// True when `name` is a canonical algorithm name.
bool is_algorithm_name(const std::string& name);

/// Parses a comma-separated `--algorithm` list ("pagerank,bfs,cc").
/// Duplicates collapse to the first occurrence; order is preserved.
/// Throws ConfigError naming the offending entry and listing the valid
/// values for empty lists or unknown names.
std::vector<std::string> parse_algorithm_list(const std::string& csv);

}  // namespace prpb::core
