#include "core/backend.hpp"
#include "core/backend_arraylang.hpp"
#include "core/backend_dataframe.hpp"
#include "core/backend_graphblas.hpp"
#include "core/backend_native.hpp"
#include "core/backend_parallel.hpp"
#include "util/error.hpp"

namespace prpb::core {

std::unique_ptr<PipelineBackend> make_backend(const std::string& name) {
  if (name == "native") return std::make_unique<NativeBackend>();
  if (name == "parallel") return std::make_unique<ParallelBackend>();
  if (name == "graphblas") return std::make_unique<GraphBlasBackend>();
  if (name == "arraylang") return std::make_unique<ArrayLangBackend>();
  if (name == "dataframe") return std::make_unique<DataFrameBackend>();
  throw util::ConfigError(
      "unknown backend '" + name +
      "' (expected native|parallel|graphblas|arraylang|dataframe)");
}

std::vector<std::string> backend_names() {
  return {"native", "parallel", "graphblas", "arraylang", "dataframe"};
}

}  // namespace prpb::core
