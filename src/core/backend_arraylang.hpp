#pragma once

#include "core/backend.hpp"

namespace prpb::core {

/// Interpreted backend: every kernel is an arraylang program (see
/// src/interp/) mirroring the paper's Matlab reference line for line.
/// Vectorized primitives run at near-native speed; everything else —
/// dispatch, boxing, generic string I/O — pays the interpreted-stack tax,
/// reproducing the Matlab/Octave/NumPy cost profile of Figures 4-7.
class ArrayLangBackend final : public PipelineBackend {
 public:
  [[nodiscard]] std::string name() const override { return "arraylang"; }

  void kernel0(const KernelContext& ctx) override;
  void kernel1(const KernelContext& ctx) override;
  sparse::CsrMatrix kernel2(const KernelContext& ctx) override;
  std::vector<double> kernel3(const KernelContext& ctx,
                              const sparse::CsrMatrix& matrix) override;

  /// The kernel programs, exposed for tests and the SLOC accounting of
  /// Table I.
  static const char* kernel0_source();
  static const char* kernel1_source();
  static const char* kernel2_source();
  static const char* kernel3_source();
};

}  // namespace prpb::core
