#include "core/runner.hpp"

#include <memory>
#include <optional>

#include "fault/checkpoint.hpp"
#include "fault/inject.hpp"
#include "io/traced_store.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace prpb::core {

namespace {

/// Folds one counting-store delta into a kernel's metrics row and mirrors
/// it into the run's registry, so the report's "metrics" object carries
/// per-kernel stage traffic on every run (traced or not).
void fold_io(KernelMetrics& metrics, const io::StageIoCounters& delta,
             obs::MetricsRegistry& registry, const char* kernel) {
  metrics.bytes_read = delta.bytes_read;
  metrics.bytes_written = delta.bytes_written;
  metrics.files_read = delta.files_read;
  metrics.files_written = delta.files_written;
  const std::string prefix(kernel);
  registry.counter(prefix + "/bytes_read")
      .add(static_cast<double>(delta.bytes_read));
  registry.counter(prefix + "/bytes_written")
      .add(static_cast<double>(delta.bytes_written));
  registry.counter(prefix + "/shards_read")
      .add(static_cast<double>(delta.files_read));
  registry.counter(prefix + "/shards_written")
      .add(static_cast<double>(delta.files_written));
}

/// Fails fast when a kernel's required input stage is absent — the barrier
/// guarantee ("each kernel fully completed before the next begins") is
/// meaningless if a later kernel silently starts from nothing.
void require_stage(io::StageStore& store, const char* stage,
                   const std::string& why) {
  if (!store.exists(stage) || store.empty(stage)) {
    throw util::PipelineError("run_pipeline: " +
                              io::shard_context(store.kind(), stage) +
                              " is missing or empty (" + why + ")");
  }
}

}  // namespace

PipelineResult run_pipeline(const PipelineConfig& config,
                            PipelineBackend& backend,
                            const RunOptions& options) {
  config.validate();

  std::unique_ptr<io::StageStore> owned;
  io::StageStore* base = options.store;
  if (base == nullptr) {
    owned = make_stage_store(config);
    base = owned.get();
  }

  // Every run gets a metrics registry — the caller's when injected, a
  // run-local one otherwise — so the result snapshot is always populated.
  obs::MetricsRegistry local_registry;
  obs::Hooks hooks = options.hooks;
  if (hooks.metrics == nullptr) hooks.metrics = &local_registry;

  // Storage decorator stack, innermost first. The fault injector sits
  // directly on the base store (it simulates the medium itself); the
  // digest layer sits above it so as-written fingerprints describe what
  // kernels intended before any injected corruption; counting and tracing
  // stay outermost so kernel I/O accounting covers retried attempts too.
  std::optional<fault::FaultInjectingStageStore> faulty;
  io::StageStore* lower = base;
  if (!options.fault_plan.empty()) {
    faulty.emplace(*base, options.fault_plan, hooks);
    lower = &*faulty;
  }
  const bool checkpointing = options.checkpoint || options.resume;
  std::optional<fault::ShardDigestStore> digests;
  if (checkpointing) {
    digests.emplace(*lower);
    lower = &*digests;
  }
  io::CountingStageStore counting(*lower);
  std::optional<io::TracedStageStore> traced;
  io::StageStore* active = &counting;
  if (hooks.tracing()) {
    traced.emplace(counting, hooks);
    active = &*traced;
  }
  io::StageStore& store = *active;

  // Checkpoint verification reads go through the digest store, so they
  // traverse the (possibly faulty) layers below without perturbing the
  // per-kernel I/O counters above.
  std::optional<fault::CheckpointManager> checkpoints;
  if (checkpointing) {
    checkpoints.emplace(*digests, *digests, stage_config_fingerprint(config),
                        config.stage_format);
  }

  fault::RetryPolicy retry = options.retry;
  retry.max_attempts = std::max(1, retry.max_attempts);
  if (retry.seed == 0) retry.seed = config.seed;

  PipelineResult result;
  result.backend = backend.name();
  result.storage = store.kind();
  result.stage_format = config.stage_format;
  result.fast_path = config.fast_path;
  result.num_vertices = config.num_vertices();
  result.num_edges = config.num_edges();
  const std::uint64_t m = config.num_edges();

  util::Stopwatch wall;
  obs::Span pipeline_span(hooks.trace, "pipeline");

  const auto context = [&](const char* in, const char* out) {
    KernelContext ctx{config, store, in, out, stages::kTemp};
    ctx.hooks = hooks;
    ctx.k3_sink = &result.k3_iterations;
    return ctx;
  };
  io::StageIoCounters mark = counting.snapshot();
  const auto io_delta = [&] {
    const io::StageIoCounters now = counting.snapshot();
    const io::StageIoCounters delta = now - mark;
    mark = now;
    return delta;
  };

  // Runs one kernel attempt loop. Transient I/O faults consume a retry
  // (after clearing the kernel's partial output and spill scratch, so a
  // re-run starts from a clean slate); every other error — ConfigError,
  // detected corruption, invariant violations — rethrows immediately.
  const auto with_retry = [&](const char* kernel, KernelMetrics& metrics,
                              const char* out_stage, const auto& body) {
    for (int attempt = 1;; ++attempt) {
      metrics.attempts = attempt;
      try {
        body();
        return;
      } catch (const std::exception& error) {
        if (attempt >= retry.max_attempts || !fault::is_retryable(error)) {
          throw;
        }
        hooks.metrics->counter(std::string(kernel) + "/retries").increment();
        util::log_info(kernel, "[", backend.name(), "] attempt ", attempt,
                       " hit a transient fault (", error.what(),
                       "); retrying");
        if (out_stage != nullptr && *out_stage != '\0') {
          store.clear_stage(out_stage);
          if (checkpoints) checkpoints->invalidate(out_stage);
        }
        store.remove(stages::kTemp);
        obs::Span backoff(hooks.trace, "fault/retry");
        fault::backoff_sleep(retry.delay_ms(attempt));
      }
    }
  };

  // Resume: a stage whose persisted manifest validates against this
  // configuration is complete, and its kernel is skipped. Validation stops
  // at the first missing/invalid stage — everything from there re-runs.
  bool skip_k0 = false;
  bool skip_k1 = false;
  if (options.resume) {
    const fault::ManifestCheck check0 = checkpoints->validate(stages::kStage0);
    if (check0.valid()) {
      skip_k0 = true;
      const fault::ManifestCheck check1 =
          checkpoints->validate(stages::kStage1);
      if (check1.valid()) {
        skip_k1 = true;
      } else {
        util::log_info("resume: kernel1 re-runs (", check1.reason, ")");
      }
    } else {
      util::log_info("resume: pipeline restarts from kernel0 (", check0.reason,
                     ")");
    }
  }

  // Kernel 0 — generate + write (untimed by the benchmark definition, but
  // measured: Figure 4 reports it for insight into write performance).
  if (skip_k0) {
    result.k0.resumed = true;
    require_stage(store, stages::kStage0, "resumed from its checkpoint");
    util::log_info("kernel0[", backend.name(), "] resumed from checkpoint");
  } else if (options.run_kernel0) {
    if (checkpoints) checkpoints->invalidate(stages::kStage0);
    obs::Span span(hooks.trace, "k0/generate");
    util::Stopwatch watch;
    with_retry("k0", result.k0, stages::kStage0, [&] {
      const KernelContext ctx = context("", stages::kStage0);
      backend.kernel0(ctx);
      if (checkpoints) checkpoints->commit(stages::kStage0);
    });
    result.k0.seconds = watch.seconds();
    result.k0.edges_processed = m;
    fold_io(result.k0, io_delta(), *hooks.metrics, "k0");
    util::log_info("kernel0[", backend.name(), "] ", result.k0.seconds, "s");
  } else {
    require_stage(store, stages::kStage0,
                  "run_kernel0 = false expects a previous run's stage here");
  }

  // Kernel 1 — sort (timed; M edges).
  if (skip_k1) {
    result.k1.resumed = true;
    require_stage(store, stages::kStage1, "resumed from its checkpoint");
    util::log_info("kernel1[", backend.name(), "] resumed from checkpoint");
  } else {
    if (checkpoints) checkpoints->invalidate(stages::kStage1);
    obs::Span span(hooks.trace, "k1/sort");
    util::Stopwatch watch;
    with_retry("k1", result.k1, stages::kStage1, [&] {
      const KernelContext ctx = context(stages::kStage0, stages::kStage1);
      backend.kernel1(ctx);
      if (checkpoints) checkpoints->commit(stages::kStage1);
    });
    result.k1.seconds = watch.seconds();
    result.k1.edges_processed = m;
    fold_io(result.k1, io_delta(), *hooks.metrics, "k1");
    util::log_info("kernel1[", backend.name(), "] ", result.k1.seconds, "s");
  }

  // Kernel 2 — filter (timed; M edges). Output is in-memory, so a retry
  // only has spill scratch to clean up.
  {
    obs::Span span(hooks.trace, "k2/filter");
    util::Stopwatch watch;
    with_retry("k2", result.k2, "", [&] {
      const KernelContext ctx = context(stages::kStage1, "");
      result.matrix = backend.kernel2(ctx);
    });
    result.k2.seconds = watch.seconds();
    result.k2.edges_processed = m;
    fold_io(result.k2, io_delta(), *hooks.metrics, "k2");
    util::log_info("kernel2[", backend.name(), "] ", result.k2.seconds, "s");
  }

  // Kernel 3 — PageRank (timed; iterations · M edge traversals).
  {
    obs::Span span(hooks.trace, "k3/pagerank");
    util::Stopwatch watch;
    with_retry("k3", result.k3, "", [&] {
      result.k3_iterations.clear();  // drop telemetry of a failed attempt
      const KernelContext ctx = context("", "");
      result.ranks = backend.kernel3(ctx, result.matrix);
    });
    result.k3.seconds = watch.seconds();
    result.k3.edges_processed =
        static_cast<std::uint64_t>(config.iterations) * m;
    fold_io(result.k3, io_delta(), *hooks.metrics, "k3");
    util::log_info("kernel3[", backend.name(), "] ", result.k3.seconds, "s");
  }

  pipeline_span.finish();
  result.wall_seconds_total = wall.seconds();
  result.fault_plan = options.fault_plan.str();
  result.retry_max_attempts = retry.max_attempts;
  result.checkpointing = checkpointing;
  if (faulty) result.faults_injected = faulty->stats().total;
  result.metrics = hooks.metrics->snapshot();
  util::ensure(result.ranks.size() == config.num_vertices(),
               "pipeline: rank vector has wrong size");
  if (!options.keep_matrix) result.matrix = sparse::CsrMatrix();
  return result;
}

}  // namespace prpb::core
