#include "core/runner.hpp"

#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/log.hpp"

namespace prpb::core {

PipelineResult run_pipeline(const PipelineConfig& config,
                            PipelineBackend& backend,
                            const RunOptions& options) {
  config.validate();
  util::ensure_dir(config.work_dir);

  PipelineResult result;
  result.backend = backend.name();
  result.num_vertices = config.num_vertices();
  result.num_edges = config.num_edges();
  const std::uint64_t m = config.num_edges();

  // Kernel 0 — generate + write (untimed by the benchmark definition, but
  // measured: Figure 4 reports it for insight into write performance).
  if (options.run_kernel0) {
    util::Stopwatch watch;
    backend.kernel0(config, config.stage0_dir());
    result.k0.seconds = watch.seconds();
    result.k0.edges_processed = m;
    util::log_info("kernel0[", backend.name(), "] ", result.k0.seconds, "s");
  }

  // Kernel 1 — sort (timed; M edges).
  {
    util::Stopwatch watch;
    backend.kernel1(config, config.stage0_dir(), config.stage1_dir());
    result.k1.seconds = watch.seconds();
    result.k1.edges_processed = m;
    util::log_info("kernel1[", backend.name(), "] ", result.k1.seconds, "s");
  }

  // Kernel 2 — filter (timed; M edges).
  {
    util::Stopwatch watch;
    result.matrix = backend.kernel2(config, config.stage1_dir());
    result.k2.seconds = watch.seconds();
    result.k2.edges_processed = m;
    util::log_info("kernel2[", backend.name(), "] ", result.k2.seconds, "s");
  }

  // Kernel 3 — PageRank (timed; iterations · M edge traversals).
  {
    util::Stopwatch watch;
    result.ranks = backend.kernel3(config, result.matrix);
    result.k3.seconds = watch.seconds();
    result.k3.edges_processed =
        static_cast<std::uint64_t>(config.iterations) * m;
    util::log_info("kernel3[", backend.name(), "] ", result.k3.seconds, "s");
  }

  util::ensure(result.ranks.size() == config.num_vertices(),
               "pipeline: rank vector has wrong size");
  if (!options.keep_matrix) result.matrix = sparse::CsrMatrix();
  return result;
}

}  // namespace prpb::core
