#include "core/runner.hpp"

#include <memory>
#include <optional>

#include "core/checksum.hpp"
#include "core/graph_source.hpp"
#include "fault/checkpoint.hpp"
#include "fault/inject.hpp"
#include "io/traced_store.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace prpb::core {

namespace {

/// Folds one counting-store delta into a kernel's metrics row and mirrors
/// it into the run's registry, so the report's "metrics" object carries
/// per-kernel stage traffic on every run (traced or not).
void fold_io(KernelMetrics& metrics, const io::StageIoCounters& delta,
             obs::MetricsRegistry& registry, const char* kernel) {
  metrics.bytes_read = delta.bytes_read;
  metrics.bytes_written = delta.bytes_written;
  metrics.files_read = delta.files_read;
  metrics.files_written = delta.files_written;
  const std::string prefix(kernel);
  registry.counter(prefix + "/bytes_read")
      .add(static_cast<double>(delta.bytes_read));
  registry.counter(prefix + "/bytes_written")
      .add(static_cast<double>(delta.bytes_written));
  registry.counter(prefix + "/shards_read")
      .add(static_cast<double>(delta.files_read));
  registry.counter(prefix + "/shards_written")
      .add(static_cast<double>(delta.files_written));
}

/// Fails fast when a kernel's required input stage is absent — the barrier
/// guarantee ("each kernel fully completed before the next begins") is
/// meaningless if a later kernel silently starts from nothing.
void require_stage(io::StageStore& store, const char* stage,
                   const std::string& why) {
  if (!store.exists(stage) || store.empty(stage)) {
    throw util::PipelineError("run_pipeline: " +
                              io::shard_context(store.kind(), stage) +
                              " is missing or empty (" + why + ")");
  }
}

}  // namespace

PipelineResult run_pipeline(const PipelineConfig& config,
                            PipelineBackend& backend,
                            const RunOptions& options) {
  config.validate();

  // The runner works on a private copy: for external sources N and M are
  // unknown until the graph source materializes (or recovers) its stages,
  // at which point they are folded in here — so every KernelContext and
  // metric downstream of kernel 0 sees the true graph size.
  PipelineConfig work = config;
  const std::unique_ptr<GraphSource> source = make_graph_source(work);
  const std::vector<std::string> source_stages = source->output_stages();

  std::unique_ptr<io::StageStore> owned;
  io::StageStore* base = options.store;
  if (base == nullptr) {
    owned = make_stage_store(config);
    base = owned.get();
  }

  // Every run gets a metrics registry — the caller's when injected, a
  // run-local one otherwise — so the result snapshot is always populated.
  obs::MetricsRegistry local_registry;
  obs::Hooks hooks = options.hooks;
  if (hooks.metrics == nullptr) hooks.metrics = &local_registry;

  // Hardware counters: run-local group unless the caller injected one.
  // When perf_event_open is unavailable (containers, paranoid settings,
  // PRPB_PERF=off) the group is inert and every sample below stays empty.
  obs::PerfCounterGroup local_perf;
  if (hooks.perf == nullptr) hooks.perf = &local_perf;

  // Storage decorator stack, innermost first. The fault injector sits
  // directly on the base store (it simulates the medium itself); the
  // digest layer sits above it so as-written fingerprints describe what
  // kernels intended before any injected corruption; counting and tracing
  // stay outermost so kernel I/O accounting covers retried attempts too.
  std::optional<fault::FaultInjectingStageStore> faulty;
  io::StageStore* lower = base;
  if (!options.fault_plan.empty()) {
    faulty.emplace(*base, options.fault_plan, hooks);
    lower = &*faulty;
  }
  const bool checkpointing = options.checkpoint || options.resume;
  std::optional<fault::ShardDigestStore> digests;
  if (checkpointing) {
    digests.emplace(*lower);
    lower = &*digests;
  }
  io::CountingStageStore counting(*lower);
  std::optional<io::TracedStageStore> traced;
  io::StageStore* active = &counting;
  if (hooks.tracing()) {
    traced.emplace(counting, hooks);
    active = &*traced;
  }
  io::StageStore& store = *active;

  // Checkpoint verification reads go through the digest store, so they
  // traverse the (possibly faulty) layers below without perturbing the
  // per-kernel I/O counters above.
  std::optional<fault::CheckpointManager> checkpoints;
  if (checkpointing) {
    checkpoints.emplace(*digests, *digests, stage_config_fingerprint(config),
                        config.stage_format);
  }

  fault::RetryPolicy retry = options.retry;
  retry.max_attempts = std::max(1, retry.max_attempts);
  if (retry.seed == 0) retry.seed = config.seed;

  PipelineResult result;
  result.backend = backend.name();
  result.storage = store.kind();
  result.stage_format = config.stage_format;
  result.csr = config.csr;
  result.fast_path = config.fast_path;

  util::Stopwatch wall;
  obs::Span pipeline_span(hooks.trace, "pipeline");

  const auto context = [&](const char* in, const char* out) {
    KernelContext ctx{work, store, in, out, stages::kTemp};
    ctx.hooks = hooks;
    ctx.k3_sink = &result.k3_iterations;
    return ctx;
  };
  io::StageIoCounters mark = counting.snapshot();
  const auto io_delta = [&] {
    const io::StageIoCounters now = counting.snapshot();
    const io::StageIoCounters delta = now - mark;
    mark = now;
    return delta;
  };

  // Runs one kernel attempt loop. Transient I/O faults consume a retry
  // (after clearing the kernel's partial output and spill scratch, so a
  // re-run starts from a clean slate); every other error — ConfigError,
  // detected corruption, invariant violations — rethrows immediately.
  const auto with_retry = [&](const char* kernel, KernelMetrics& metrics,
                              const std::vector<std::string>& out_stages,
                              const auto& body) {
    for (int attempt = 1;; ++attempt) {
      metrics.attempts = attempt;
      try {
        body();
        return;
      } catch (const std::exception& error) {
        if (attempt >= retry.max_attempts || !fault::is_retryable(error)) {
          throw;
        }
        hooks.metrics->counter(std::string(kernel) + "/retries").increment();
        util::log_info(kernel, "[", backend.name(), "] attempt ", attempt,
                       " hit a transient fault (", error.what(),
                       "); retrying");
        for (const std::string& out_stage : out_stages) {
          store.clear_stage(out_stage);
          if (checkpoints) checkpoints->invalidate(out_stage);
        }
        store.remove(stages::kTemp);
        obs::Span backoff(hooks.trace, "fault/retry");
        fault::backoff_sleep(retry.delay_ms(attempt));
      }
    }
  };

  // Resume: a stage whose persisted manifest validates against this
  // configuration is complete, and its kernel is skipped. Validation stops
  // at the first missing/invalid stage — everything from there re-runs.
  bool skip_k0 = false;
  bool skip_k1 = false;
  if (options.resume) {
    skip_k0 = true;
    for (const std::string& stage : source_stages) {
      const fault::ManifestCheck check = checkpoints->validate(stage);
      if (!check.valid()) {
        util::log_info("resume: pipeline restarts from kernel0 (", stage,
                       ": ", check.reason, ")");
        skip_k0 = false;
        break;
      }
    }
    if (skip_k0) {
      const fault::ManifestCheck check1 =
          checkpoints->validate(stages::kStage1);
      if (check1.valid()) {
        skip_k1 = true;
      } else {
        util::log_info("resume: kernel1 re-runs (", check1.reason, ")");
      }
    }
  }

  // Kernel 0 — the graph source materializes the edge stage (untimed by
  // the benchmark definition, but measured: Figure 4 reports it for
  // insight into write performance). Skipped paths still recover the graph
  // summary from the persisted stages, never from re-reading the input.
  if (skip_k0) {
    result.k0.resumed = true;
    for (const std::string& stage : source_stages) {
      require_stage(store, stage.c_str(), "resumed from its checkpoint");
    }
    result.graph = source->recover(context("", stages::kStage0));
    fold_io(result.k0, io_delta(), *hooks.metrics, "k0");
    util::log_info("kernel0[", backend.name(), "] resumed from checkpoint");
  } else if (options.run_kernel0) {
    if (checkpoints) {
      for (const std::string& stage : source_stages) {
        checkpoints->invalidate(stage);
      }
    }
    obs::Span span(hooks.trace, "k0/generate");
    obs::PerfScope perf(hooks.perf);
    util::Stopwatch watch;
    with_retry("k0", result.k0, source_stages, [&] {
      const KernelContext ctx = context("", stages::kStage0);
      result.graph = source->materialize(ctx, backend);
      if (checkpoints) {
        for (const std::string& stage : source_stages) {
          checkpoints->commit(stage);
        }
      }
    });
    result.k0.seconds = watch.seconds();
    result.k0.perf = perf.sample();
    span.set_args(result.k0.perf.args_json(result.k0.seconds));
    result.k0.edges_processed = result.graph.edges;
    fold_io(result.k0, io_delta(), *hooks.metrics, "k0");
    util::log_info("kernel0[", backend.name(), "] ", result.k0.seconds, "s");
  } else {
    for (const std::string& stage : source_stages) {
      require_stage(store, stage.c_str(),
                    "run_kernel0 = false expects a previous run's stage here");
    }
    result.graph = source->recover(context("", stages::kStage0));
    fold_io(result.k0, io_delta(), *hooks.metrics, "k0");
  }

  // N and M are authoritative only now: for external sources they come
  // from the materialized (or recovered) stages.
  if (work.source == "external") {
    work.external_vertices = result.graph.vertices;
    work.external_edges = result.graph.edges;
  }
  result.num_vertices = work.num_vertices();
  result.num_edges = work.num_edges();
  const std::uint64_t m = work.num_edges();

  // Kernel 1 — sort (timed; M edges).
  if (skip_k1) {
    result.k1.resumed = true;
    require_stage(store, stages::kStage1, "resumed from its checkpoint");
    util::log_info("kernel1[", backend.name(), "] resumed from checkpoint");
  } else {
    if (checkpoints) checkpoints->invalidate(stages::kStage1);
    obs::Span span(hooks.trace, "k1/sort");
    obs::PerfScope perf(hooks.perf);
    util::Stopwatch watch;
    with_retry("k1", result.k1, {stages::kStage1}, [&] {
      const KernelContext ctx = context(stages::kStage0, stages::kStage1);
      backend.kernel1(ctx);
      if (checkpoints) checkpoints->commit(stages::kStage1);
    });
    result.k1.seconds = watch.seconds();
    result.k1.perf = perf.sample();
    span.set_args(result.k1.perf.args_json(result.k1.seconds));
    result.k1.edges_processed = m;
    fold_io(result.k1, io_delta(), *hooks.metrics, "k1");
    util::log_info("kernel1[", backend.name(), "] ", result.k1.seconds, "s");
  }

  // Kernel 2 — filter (timed; M edges). Output is in-memory, so a retry
  // only has spill scratch to clean up.
  {
    obs::Span span(hooks.trace, "k2/filter");
    obs::PerfScope perf(hooks.perf);
    util::Stopwatch watch;
    with_retry("k2", result.k2, {}, [&] {
      const KernelContext ctx = context(stages::kStage1, "");
      result.matrix = backend.kernel2(ctx);
    });
    result.k2.seconds = watch.seconds();
    result.k2.perf = perf.sample();
    span.set_args(result.k2.perf.args_json(result.k2.seconds));
    result.k2.edges_processed = m;
    fold_io(result.k2, io_delta(), *hooks.metrics, "k2");
    util::log_info("kernel2[", backend.name(), "] ", result.k2.seconds, "s");
  }

  // Structural bytes per edge of the matrix kernel 3 will iterate over —
  // measured (not re-encoded) for the compressed form, so the report can
  // attribute K3 DRAM-traffic differences to the CSR layout.
  if (result.matrix.nnz() > 0) {
    result.csr_bytes_per_edge =
        work.csr == "compressed"
            ? static_cast<double>(
                  sparse::CompressedCsrMatrix::encoded_column_bytes(
                      result.matrix)) /
                  static_cast<double>(result.matrix.nnz())
            : 8.0;
  }

  // Kernel 3 — the algorithm stage: every configured algorithm runs over
  // the shared kernel-2 matrix, in order (timed per algorithm; pagerank
  // counts the paper's iterations · M edge traversals, bfs/cc one
  // structural traversal). The "pagerank" run also populates the legacy
  // k3/ranks fields, so the fixed pipeline's results read unchanged.
  for (const std::string& algorithm : work.algorithms) {
    AlgorithmRun run;
    const std::string span_name = "k3/" + algorithm;
    obs::Span span(hooks.trace, span_name.c_str());
    obs::PerfScope perf(hooks.perf);
    util::Stopwatch watch;
    with_retry("k3", run.metrics, {}, [&] {
      if (algorithm == "pagerank") {
        result.k3_iterations.clear();  // drop telemetry of a failed attempt
      }
      const KernelContext ctx = context("", "");
      run.output = backend.run_algorithm(ctx, result.matrix, algorithm);
    });
    run.metrics.seconds = watch.seconds();
    run.metrics.perf = perf.sample();
    span.set_args(run.metrics.perf.args_json(run.metrics.seconds));
    run.metrics.edges_processed = run.output.work_edges;
    // The pagerank run keeps the historical "k3/..." metric keys; other
    // algorithms get their own prefix so rows never collide.
    const std::string prefix =
        algorithm == "pagerank" ? "k3" : "k3_" + algorithm;
    fold_io(run.metrics, io_delta(), *hooks.metrics, prefix.c_str());
    run.output.checksum = algorithm_checksum(run.output);
    util::log_info("kernel3/", algorithm, "[", backend.name(), "] ",
                   run.metrics.seconds, "s");
    if (algorithm == "pagerank") {
      result.k3 = run.metrics;
      result.ranks = run.output.ranks;
    }
    result.algorithms.push_back(std::move(run));
  }

  pipeline_span.finish();
  result.wall_seconds_total = wall.seconds();
  result.fault_plan = options.fault_plan.str();
  result.retry_max_attempts = retry.max_attempts;
  result.checkpointing = checkpointing;
  if (faulty) result.faults_injected = faulty->stats().total;
  result.metrics = hooks.metrics->snapshot();
  for (const AlgorithmRun& run : result.algorithms) {
    const std::size_t outputs = run.output.has_ranks()
                                    ? run.output.ranks.size()
                                    : std::max(run.output.levels.size(),
                                               run.output.labels.size());
    util::ensure(outputs == work.num_vertices(),
                 "pipeline: " + run.output.algorithm +
                     " output has wrong size");
  }
  if (!options.keep_matrix) result.matrix = sparse::CsrMatrix();
  return result;
}

}  // namespace prpb::core
