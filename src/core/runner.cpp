#include "core/runner.hpp"

#include <memory>
#include <optional>

#include "io/traced_store.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace prpb::core {

namespace {

/// Folds one counting-store delta into a kernel's metrics row and mirrors
/// it into the run's registry, so the report's "metrics" object carries
/// per-kernel stage traffic on every run (traced or not).
void fold_io(KernelMetrics& metrics, const io::StageIoCounters& delta,
             obs::MetricsRegistry& registry, const char* kernel) {
  metrics.bytes_read = delta.bytes_read;
  metrics.bytes_written = delta.bytes_written;
  metrics.files_read = delta.files_read;
  metrics.files_written = delta.files_written;
  const std::string prefix(kernel);
  registry.counter(prefix + "/bytes_read")
      .add(static_cast<double>(delta.bytes_read));
  registry.counter(prefix + "/bytes_written")
      .add(static_cast<double>(delta.bytes_written));
  registry.counter(prefix + "/shards_read")
      .add(static_cast<double>(delta.files_read));
  registry.counter(prefix + "/shards_written")
      .add(static_cast<double>(delta.files_written));
}

/// Fails fast when a kernel's required input stage is absent — the barrier
/// guarantee ("each kernel fully completed before the next begins") is
/// meaningless if a later kernel silently starts from nothing.
void require_stage(io::StageStore& store, const char* stage,
                   const std::string& why) {
  if (!store.exists(stage) || store.empty(stage)) {
    throw util::PipelineError("run_pipeline: stage '" + std::string(stage) +
                              "' is missing or empty (" + why + ")");
  }
}

}  // namespace

PipelineResult run_pipeline(const PipelineConfig& config,
                            PipelineBackend& backend,
                            const RunOptions& options) {
  config.validate();

  std::unique_ptr<io::StageStore> owned;
  io::StageStore* base = options.store;
  if (base == nullptr) {
    owned = make_stage_store(config);
    base = owned.get();
  }
  io::CountingStageStore counting(*base);

  // Every run gets a metrics registry — the caller's when injected, a
  // run-local one otherwise — so the result snapshot is always populated.
  obs::MetricsRegistry local_registry;
  obs::Hooks hooks = options.hooks;
  if (hooks.metrics == nullptr) hooks.metrics = &local_registry;

  // With tracing live, stack the tracing decorator outside the counting
  // store: kernels then emit per-shard read/write spans and latency
  // histograms for free, while byte accounting stays on the inner layer.
  std::optional<io::TracedStageStore> traced;
  io::StageStore* active = &counting;
  if (hooks.tracing()) {
    traced.emplace(counting, hooks);
    active = &*traced;
  }
  io::StageStore& store = *active;

  PipelineResult result;
  result.backend = backend.name();
  result.storage = store.kind();
  result.stage_format = config.stage_format;
  result.fast_path = config.fast_path;
  result.num_vertices = config.num_vertices();
  result.num_edges = config.num_edges();
  const std::uint64_t m = config.num_edges();

  util::Stopwatch wall;
  obs::Span pipeline_span(hooks.trace, "pipeline");

  const auto context = [&](const char* in, const char* out) {
    KernelContext ctx{config, store, in, out, stages::kTemp};
    ctx.hooks = hooks;
    ctx.k3_sink = &result.k3_iterations;
    return ctx;
  };
  io::StageIoCounters mark = counting.snapshot();
  const auto io_delta = [&] {
    const io::StageIoCounters now = counting.snapshot();
    const io::StageIoCounters delta = now - mark;
    mark = now;
    return delta;
  };

  // Kernel 0 — generate + write (untimed by the benchmark definition, but
  // measured: Figure 4 reports it for insight into write performance).
  if (options.run_kernel0) {
    const KernelContext ctx = context("", stages::kStage0);
    obs::Span span(hooks.trace, "k0/generate");
    util::Stopwatch watch;
    backend.kernel0(ctx);
    result.k0.seconds = watch.seconds();
    result.k0.edges_processed = m;
    fold_io(result.k0, io_delta(), *hooks.metrics, "k0");
    util::log_info("kernel0[", backend.name(), "] ", result.k0.seconds, "s");
  } else {
    require_stage(store, stages::kStage0,
                  "run_kernel0 = false expects a previous run's stage here");
  }

  // Kernel 1 — sort (timed; M edges).
  {
    const KernelContext ctx = context(stages::kStage0, stages::kStage1);
    obs::Span span(hooks.trace, "k1/sort");
    util::Stopwatch watch;
    backend.kernel1(ctx);
    result.k1.seconds = watch.seconds();
    result.k1.edges_processed = m;
    fold_io(result.k1, io_delta(), *hooks.metrics, "k1");
    util::log_info("kernel1[", backend.name(), "] ", result.k1.seconds, "s");
  }

  // Kernel 2 — filter (timed; M edges).
  {
    const KernelContext ctx = context(stages::kStage1, "");
    obs::Span span(hooks.trace, "k2/filter");
    util::Stopwatch watch;
    result.matrix = backend.kernel2(ctx);
    result.k2.seconds = watch.seconds();
    result.k2.edges_processed = m;
    fold_io(result.k2, io_delta(), *hooks.metrics, "k2");
    util::log_info("kernel2[", backend.name(), "] ", result.k2.seconds, "s");
  }

  // Kernel 3 — PageRank (timed; iterations · M edge traversals).
  {
    const KernelContext ctx = context("", "");
    obs::Span span(hooks.trace, "k3/pagerank");
    util::Stopwatch watch;
    result.ranks = backend.kernel3(ctx, result.matrix);
    result.k3.seconds = watch.seconds();
    result.k3.edges_processed =
        static_cast<std::uint64_t>(config.iterations) * m;
    fold_io(result.k3, io_delta(), *hooks.metrics, "k3");
    util::log_info("kernel3[", backend.name(), "] ", result.k3.seconds, "s");
  }

  pipeline_span.finish();
  result.wall_seconds_total = wall.seconds();
  result.metrics = hooks.metrics->snapshot();
  util::ensure(result.ranks.size() == config.num_vertices(),
               "pipeline: rank vector has wrong size");
  if (!options.keep_matrix) result.matrix = sparse::CsrMatrix();
  return result;
}

}  // namespace prpb::core
