// The pluggable K0 graph source (DESIGN.md §9).
//
// The paper fixes kernel 0 to a Kronecker generator; a GraphSource
// abstracts "where edges come from" so kernels 1-3 run unchanged on real
// graphs. Two sources exist:
//   generator — the paper's K0: the backend's kernel0() writes the
//               configured generator's edges (bit-identical to the fixed
//               pipeline; golden suite intact)
//   external  — ingest a SNAP-style edge list (io/edge_list): parse,
//               build the dense vertex remap, persist the remap as a
//               dictionary stage, and write the remapped edges as the
//               k0_edges stage — so K1-K3 see exactly the shape K0 would
//               have produced
//
// The source is the only component that knows N and M for external
// graphs; it reports them (plus degree-skew statistics for real graphs)
// through GraphSummary, which the runner folds into its working
// configuration before kernel 1 starts.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/config.hpp"
#include "core/kernel_context.hpp"
#include "gen/degree.hpp"

namespace prpb::core {

namespace stages {
/// External-source vertex dictionary: one record per vertex, u = dense id,
/// v = original file id. Written even for identity remaps so resume can
/// recover N without re-reading the input file.
inline constexpr const char* kStageDict = "k0_vertex_dict";
}  // namespace stages

/// What a source materialized: the graph's true size plus, for external
/// graphs, provenance and degree-skew statistics for the report.
struct GraphSummary {
  std::string source;          ///< "generator" | "external"
  std::uint64_t vertices = 0;  ///< N the downstream kernels must use
  std::uint64_t edges = 0;     ///< M (with duplicates, pre-filter)
  // External source only ↓
  std::string input_path;
  std::string input_format;  ///< "tsv", "csv", ... ("" when unknown/N.A.)
  bool identity_remap = true;  ///< original ids were already dense 0..N-1
  bool has_degree_skew = false;
  gen::DegreeSkew out_degree_skew;
  gen::DegreeSkew in_degree_skew;
};

/// One K0 strategy. materialize() must leave a complete k0_edges stage
/// (plus any auxiliary stages it lists) in ctx.store; the runner owns
/// timing, retries and checkpoint commits exactly as for generated runs.
class GraphSource {
 public:
  virtual ~GraphSource() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Stages this source writes, in write order. The runner checkpoints
  /// and resume-validates each of them (k0_edges last, so a partially
  /// written auxiliary stage invalidates the whole kernel-0 step).
  [[nodiscard]] virtual std::vector<std::string> output_stages() const = 0;

  /// Materializes the source's stages through ctx.store and returns the
  /// graph summary. `backend` lets the generator source keep dispatching
  /// to the backend's own kernel0 implementation.
  virtual GraphSummary materialize(const KernelContext& ctx,
                                   PipelineBackend& backend) = 0;

  /// Recovers the summary from already-materialized stages without
  /// touching the original input (the --resume path; also used when
  /// run_kernel0 = false reuses a previous run's stages).
  virtual GraphSummary recover(const KernelContext& ctx) = 0;
};

/// Factory over config.source. Known names: generator, external. Throws
/// ConfigError for unknown names, listing the valid values.
std::unique_ptr<GraphSource> make_graph_source(const PipelineConfig& config);

/// All registered source names.
std::vector<std::string> source_names();

}  // namespace prpb::core
