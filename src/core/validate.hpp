// Result validation per the paper:
//   "The results of the above calculation can be checked by comparing r with
//    the first eigenvector of c.*A.' + (1-c)/N ... Normalizing both r and r1
//    by the sums of their absolute values, these quantities should be
//    equivalent."
// Plus cross-backend agreement checks used by the integration tests.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"

namespace prpb::core {

struct EigenCheck {
  bool pass = false;
  double max_abs_diff = 0.0;  ///< between L1-normalized r and eigenvector
  double eigenvalue = 0.0;
  int eigensolver_iterations = 0;
};

/// Dense eigenvector validation. Builds G = c·Aᵀ + (1−c)/N densely, so this
/// is restricted to small N (the caller should keep N ≤ ~4096).
EigenCheck validate_against_eigenvector(const sparse::CsrMatrix& a,
                                        const std::vector<double>& r,
                                        double damping, double tol = 1e-6);

/// Max absolute difference between two L1-normalized vectors.
double normalized_difference(const std::vector<double>& a,
                             const std::vector<double>& b);

/// True when both vectors, L1-normalized, agree entrywise within tol.
bool ranks_agree(const std::vector<double>& a, const std::vector<double>& b,
                 double tol = 1e-9);

/// Indices of the k largest entries, ties broken by lower index first.
std::vector<std::uint64_t> top_k(const std::vector<double>& values,
                                 std::size_t k);

}  // namespace prpb::core
