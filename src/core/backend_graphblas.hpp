#pragma once

#include "core/backend.hpp"

namespace prpb::core {

/// GraphBLAS backend: kernels 2-3 expressed entirely in mini-GraphBLAS
/// operations (build, reduce, select, diag, mxm, vxm), demonstrating the
/// paper's "well suited to the GraphBLAS standard" claim. Kernels 0-1 use
/// the same tuned I/O as `native` (GraphBLAS does not define file I/O).
class GraphBlasBackend final : public PipelineBackend {
 public:
  [[nodiscard]] std::string name() const override { return "graphblas"; }

  void kernel0(const KernelContext& ctx) override;
  void kernel1(const KernelContext& ctx) override;
  sparse::CsrMatrix kernel2(const KernelContext& ctx) override;
  std::vector<double> kernel3(const KernelContext& ctx,
                              const sparse::CsrMatrix& matrix) override;

  /// BFS and CC run through their canonical GraphBLAS formulations
  /// (grb/algorithms: or-and vxm frontier expansion, min-select label
  /// propagation). Both produce the same exact integer outputs as the
  /// shared reference fallbacks — pinned by the cross-backend tests.
  AlgorithmResult run_algorithm(const KernelContext& ctx,
                                const sparse::CsrMatrix& matrix,
                                const std::string& algorithm) override;
};

}  // namespace prpb::core
