#pragma once

#include "core/backend.hpp"

namespace prpb::core {

/// GraphBLAS backend: kernels 2-3 expressed entirely in mini-GraphBLAS
/// operations (build, reduce, select, diag, mxm, vxm), demonstrating the
/// paper's "well suited to the GraphBLAS standard" claim. Kernels 0-1 use
/// the same tuned I/O as `native` (GraphBLAS does not define file I/O).
class GraphBlasBackend final : public PipelineBackend {
 public:
  [[nodiscard]] std::string name() const override { return "graphblas"; }

  void kernel0(const KernelContext& ctx) override;
  void kernel1(const KernelContext& ctx) override;
  sparse::CsrMatrix kernel2(const KernelContext& ctx) override;
  std::vector<double> kernel3(const KernelContext& ctx,
                              const sparse::CsrMatrix& matrix) override;
};

}  // namespace prpb::core
