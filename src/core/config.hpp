// Pipeline configuration — the benchmark's free parameters (paper §IV):
// scale S, edge factor k (fixed at 16 by the benchmark), number of files,
// damping factor c = 0.85, 20 PageRank iterations, the staging root, and
// the storage tier stages live on (the paper's future-work "different
// storage (Lustre, local disk)" knob; `mem` is the tmpfs-style ablation).
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "io/stage_codec.hpp"
#include "io/stage_store.hpp"
#include "io/tsv.hpp"
#include "sort/edge_sort.hpp"

namespace prpb::core {

struct PipelineConfig {
  int scale = 16;
  int edge_factor = 16;
  std::uint64_t seed = 20160205;
  std::string generator = "kronecker";  ///< kronecker | bter | ppl
  /// Graph source for kernel 0 (core/graph_source.hpp): "generator" runs
  /// the paper's K0 through the backend; "external" ingests a real edge
  /// list from input_path, so kernels 1-3 run unchanged on real graphs.
  std::string source = "generator";
  /// External graph file (SNAP-style .txt/.tsv/.csv edge list, or .mtx
  /// MatrixMarket). Required iff source == "external".
  std::filesystem::path input_path;
  /// Kernel-3 algorithms to run over the kernel-2 matrix, in order (see
  /// core/algorithm.hpp). "pagerank" is the paper's fixed pipeline.
  std::vector<std::string> algorithms{"pagerank"};
  std::size_t num_files = 1;            ///< shards per stage (free parameter)
  int iterations = 20;
  double damping = 0.85;
  sort::SortKey sort_key = sort::SortKey::kStartEnd;
  /// Stage storage tier: "dir" (shard files under work_dir) or "mem"
  /// (in-memory shard buffers — the tmpfs ablation).
  std::string storage = "dir";
  /// Stage encoding: "tsv" (the paper's format, the default) or "binary"
  /// (columnar little-endian — the serialization ablation).
  std::string stage_format = "tsv";
  /// Staging root for dir storage; kernel stages live in subdirectories of
  /// it. Unused (and may be empty) with mem storage.
  std::filesystem::path work_dir;
  /// RAM budget for kernel 1; 0 means unlimited (always in-memory).
  /// When the in-memory sort would exceed it, the external sort runs.
  std::uint64_t memory_budget_bytes = 0;
  /// Kernel-3 CSR storage form: "plain" streams 8-byte column indices,
  /// "compressed" re-encodes them as delta-varint groups
  /// (sparse::CompressedCsrMatrix, DESIGN.md §12) before the iteration
  /// loop, shrinking per-edge index traffic ~4-7x. Results are
  /// bit-identical either way; interpreted-stack backends ignore it.
  std::string csr = "plain";
  /// Enables the src/perf fast paths: kernel 1's radix partition sort,
  /// prefetched (decode-overlapped) stage reads, kernel 2's parallel CSR
  /// build and kernel 3's cache-blocked SpMV. Results are bit-identical
  /// to the reference paths; off by default for the ablation baseline.
  bool fast_path = false;
  /// True graph size of an external source, filled by the runner once the
  /// source materializes (or resumes) its stages — unknown before that,
  /// because N is the number of distinct vertex ids in the input file.
  /// Zero (and unused) for the generator source.
  std::uint64_t external_vertices = 0;
  std::uint64_t external_edges = 0;

  /// N: 2^scale for the generator source, the remapped vertex count for
  /// external graphs (0 until the source has materialized).
  [[nodiscard]] std::uint64_t num_vertices() const {
    return source == "external" ? external_vertices : 1ULL << scale;
  }
  /// M (with duplicates, pre-filter): edge_factor·N for the generator
  /// source, the input file's edge count for external graphs.
  [[nodiscard]] std::uint64_t num_edges() const {
    return source == "external"
               ? external_edges
               : static_cast<std::uint64_t>(edge_factor) * num_vertices();
  }

  /// Throws ConfigError on invalid values.
  void validate() const;
};

/// Builds the stage store the configuration asks for ("dir" rooted at
/// work_dir, or "mem"). Throws ConfigError for unknown storage names.
std::unique_ptr<io::StageStore> make_stage_store(const PipelineConfig& config);

/// Resolves the configured stage codec. `flavor` picks the TSV parse/format
/// flavor (interpreted-stack backends pass kGeneric); binary ignores it.
/// Throws ConfigError for unknown stage_format names.
const io::StageCodec& make_stage_codec(const PipelineConfig& config,
                                       io::Codec flavor = io::Codec::kFast);

/// Fingerprint of every configuration parameter that determines stage
/// bytes (scale, edge factor, seed, generator, shard count, stage format,
/// sort key). Checkpoint manifests record it so --resume never reuses
/// stages produced under a different configuration.
std::uint64_t stage_config_fingerprint(const PipelineConfig& config);

/// Table II row: the benchmark run-size bookkeeping for one scale.
struct RunSize {
  int scale = 0;
  std::uint64_t max_vertices = 0;  ///< N = 2^S
  std::uint64_t max_edges = 0;     ///< M = k*N
  std::uint64_t memory_bytes = 0;  ///< 16 bytes per edge (paper's accounting)
};

/// Computes the Table II row for a scale (edge factor defaults to 16).
RunSize run_size(int scale, int edge_factor = 16);

}  // namespace prpb::core
