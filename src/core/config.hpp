// Pipeline configuration — the benchmark's free parameters (paper §IV):
// scale S, edge factor k (fixed at 16 by the benchmark), number of files,
// damping factor c = 0.85, 20 PageRank iterations, and the staging root.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

#include "io/tsv.hpp"
#include "sort/edge_sort.hpp"

namespace prpb::core {

struct PipelineConfig {
  int scale = 16;
  int edge_factor = 16;
  std::uint64_t seed = 20160205;
  std::string generator = "kronecker";  ///< kronecker | bter | ppl
  std::size_t num_files = 1;            ///< shards per stage (free parameter)
  int iterations = 20;
  double damping = 0.85;
  sort::SortKey sort_key = sort::SortKey::kStartEnd;
  /// Staging root; kernel stages live in subdirectories of it.
  std::filesystem::path work_dir;
  /// RAM budget for kernel 1; 0 means unlimited (always in-memory).
  /// When the in-memory sort would exceed it, the external sort runs.
  std::uint64_t memory_budget_bytes = 0;

  [[nodiscard]] std::uint64_t num_vertices() const { return 1ULL << scale; }
  [[nodiscard]] std::uint64_t num_edges() const {
    return static_cast<std::uint64_t>(edge_factor) * num_vertices();
  }

  /// Stage directories under work_dir.
  [[nodiscard]] std::filesystem::path stage0_dir() const {
    return work_dir / "k0_edges";
  }
  [[nodiscard]] std::filesystem::path stage1_dir() const {
    return work_dir / "k1_sorted";
  }
  [[nodiscard]] std::filesystem::path temp_dir() const {
    return work_dir / "tmp";
  }

  /// Throws ConfigError on invalid values.
  void validate() const;
};

/// Table II row: the benchmark run-size bookkeeping for one scale.
struct RunSize {
  int scale = 0;
  std::uint64_t max_vertices = 0;  ///< N = 2^S
  std::uint64_t max_edges = 0;     ///< M = k*N
  std::uint64_t memory_bytes = 0;  ///< 16 bytes per edge (paper's accounting)
};

/// Computes the Table II row for a scale (edge factor defaults to 16).
RunSize run_size(int scale, int edge_factor = 16);

}  // namespace prpb::core
