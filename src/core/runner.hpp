// Pipeline orchestration: runs kernels 0-3 in order through a backend,
// timing each and reporting the paper's metrics (edges/second; kernel 3
// counts 20·M edge traversals) plus per-kernel stage I/O. "Each kernel in
// the pipeline must be fully completed before the next kernel can begin" —
// the runner enforces the barrier by materializing every stage before the
// next kernel starts.
//
// The runner owns the stage-naming scheme (stages::*) and the storage
// wiring: it builds the store from config.storage (or takes an injected
// one), wraps it in an I/O-counting decorator, and hands kernels a
// KernelContext. Kernels never see paths.
#pragma once

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/config.hpp"
#include "core/graph_source.hpp"
#include "core/kernel_context.hpp"
#include "fault/plan.hpp"
#include "fault/retry.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/trace.hpp"
#include "sparse/csr.hpp"
#include "sparse/pagerank.hpp"
#include "util/timer.hpp"

namespace prpb::core {

/// Canonical stage names — the single definition (kernels, benches,
/// examples and tests all address stages through these).
namespace stages {
inline constexpr const char* kStage0 = "k0_edges";   ///< kernel-0 output
inline constexpr const char* kStage1 = "k1_sorted";  ///< kernel-1 output
inline constexpr const char* kTemp = "tmp";          ///< spill scratch
}  // namespace stages

struct KernelMetrics {
  /// Floor for rate computation: a timed kernel that completes faster than
  /// the clock can resolve reports edges/s as if it took this long instead
  /// of silently reporting 0 (which plots as a missing point in sweeps).
  static constexpr double kMinMeasurableSeconds = 1e-9;

  double seconds = 0.0;
  std::uint64_t edges_processed = 0;  ///< M, or iterations·M for kernel 3
  // Stage traffic recorded by the runner's counting store.
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t files_read = 0;     ///< shards opened for reading
  std::uint64_t files_written = 0;  ///< shards opened for writing
  /// Execution attempts this kernel took (1 = first try succeeded; > 1
  /// means transient I/O faults were absorbed by the retry policy).
  int attempts = 1;
  /// True when --resume validated the kernel's checkpoint and skipped it.
  bool resumed = false;
  /// Hardware-counter deltas for the kernel's timed section (covers
  /// retried attempts, like the I/O counters). Empty — perf.any() false —
  /// when perf_event_open is unavailable on this host.
  obs::PerfSample perf;

  /// Stage bytes moved per processed edge (read + write sides).
  [[nodiscard]] double bytes_per_edge() const {
    if (edges_processed == 0) return 0.0;
    return static_cast<double>(bytes_read + bytes_written) /
           static_cast<double>(edges_processed);
  }

  [[nodiscard]] double edges_per_second() const {
    if (edges_processed == 0) return 0.0;
    return static_cast<double>(edges_processed) /
           std::max(seconds, kMinMeasurableSeconds);
  }
};

/// One K3 algorithm's output plus its timing/IO row — the runner wraps
/// every configured algorithm in one of these, in configuration order.
struct AlgorithmRun {
  AlgorithmResult output;
  KernelMetrics metrics;
};

struct PipelineResult {
  std::string backend;
  std::string storage;       ///< store kind the run used ("dir" | "mem")
  std::string stage_format;  ///< stage encoding ("tsv" | "binary")
  std::string csr;           ///< K3 CSR form ("plain" | "compressed")
  bool fast_path = false;    ///< whether the src/perf fast paths were on
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  /// What kernel 0's graph source produced: true N and M plus, for
  /// external graphs, provenance and degree-skew statistics.
  GraphSummary graph;
  KernelMetrics k0;  ///< untimed by the benchmark; measured for insight
  KernelMetrics k1;
  KernelMetrics k2;
  KernelMetrics k3;  ///< the pagerank algorithm's row (zero when not run)
  sparse::CsrMatrix matrix;     ///< kernel-2 output
  /// Column-index bytes per edge of the kernel-2 matrix in the configured
  /// CSR form: 8.0 for plain, the measured delta-varint group encoding
  /// size for compressed (0 when the matrix is empty).
  double csr_bytes_per_edge = 0.0;
  /// Kernel-3 PageRank output. Populated iff "pagerank" is configured,
  /// mirroring algorithms[i].output.ranks for backward compatibility.
  std::vector<double> ranks;
  /// Every configured K3 algorithm, in run order (always at least one).
  std::vector<AlgorithmRun> algorithms;
  /// End-to-end wall time of the run (same monotonic clock as the
  /// per-kernel timings; covers everything between entry and return,
  /// including the inter-kernel barriers).
  double wall_seconds_total = 0.0;
  /// Snapshot of the run's metrics registry (kernel counters, shard
  /// latency and batch-size histograms, ...). Serialized under "metrics".
  obs::MetricsSnapshot metrics;
  /// Per-iteration kernel-3 telemetry (residual, rank-sum drift, ms per
  /// iteration). Empty for backends that do not report it (arraylang).
  std::vector<sparse::IterationStats> k3_iterations;
  // Resilience summary (serialized under "resilience" in the run report).
  std::string fault_plan;         ///< canonical injected-fault plan ("" = none)
  int retry_max_attempts = 1;     ///< kernel attempt budget the run used
  bool checkpointing = false;     ///< stage manifests verified and persisted
  std::uint64_t faults_injected = 0;  ///< faults the injector actually fired
};

struct RunOptions {
  bool run_kernel0 = true;  ///< when false, stage0 must already exist
  bool keep_matrix = true;  ///< retain the kernel-2 matrix in the result
  /// Run against this store instead of building one from config.storage
  /// (not owned; lets tests and benches share or inspect stages).
  io::StageStore* store = nullptr;
  /// Observability hooks threaded into every kernel and I/O layer. When
  /// metrics is null the runner builds a run-local registry (the result
  /// snapshot is populated either way); when trace is set and enabled,
  /// stage I/O is additionally routed through a tracing store decorator.
  obs::Hooks hooks;
  /// Non-empty: wrap the store in a FaultInjectingStageStore interpreting
  /// this plan (deterministic from plan.seed).
  fault::FaultPlan fault_plan;
  /// Kernel retry budget for transient I/O faults. max_attempts <= 1
  /// disables retries; seed 0 inherits config.seed for the backoff jitter.
  fault::RetryPolicy retry;
  /// Verify each completed stage against its as-written digests and
  /// persist a checkpoint manifest (silent corruption surfaces as
  /// util::CorruptionError at the stage barrier instead of as wrong
  /// answers downstream).
  bool checkpoint = false;
  /// Skip kernels whose persisted checkpoint manifests validate against
  /// this configuration (implies checkpoint). Kernels re-run from the
  /// first missing or invalid stage.
  bool resume = false;
};

/// Runs the full pipeline. Stages live in the configured store. Throws
/// util::PipelineError when options.run_kernel0 is false and the k0_edges
/// stage is missing or empty.
PipelineResult run_pipeline(const PipelineConfig& config,
                            PipelineBackend& backend,
                            const RunOptions& options = {});

}  // namespace prpb::core
