// Pipeline orchestration: runs kernels 0-3 in order through a backend,
// timing each and reporting the paper's metrics (edges/second; kernel 3
// counts 20·M edge traversals). "Each kernel in the pipeline must be fully
// completed before the next kernel can begin" — the runner enforces the
// barrier by materializing every stage before the next kernel starts.
#pragma once

#include <optional>
#include <vector>

#include "core/backend.hpp"
#include "core/config.hpp"
#include "sparse/csr.hpp"
#include "util/timer.hpp"

namespace prpb::core {

struct KernelMetrics {
  double seconds = 0.0;
  std::uint64_t edges_processed = 0;  ///< M, or iterations·M for kernel 3

  [[nodiscard]] double edges_per_second() const {
    return seconds > 0.0
               ? static_cast<double>(edges_processed) / seconds
               : 0.0;
  }
};

struct PipelineResult {
  std::string backend;
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  KernelMetrics k0;  ///< untimed by the benchmark; measured for insight
  KernelMetrics k1;
  KernelMetrics k2;
  KernelMetrics k3;
  sparse::CsrMatrix matrix;     ///< kernel-2 output
  std::vector<double> ranks;    ///< kernel-3 output
};

struct RunOptions {
  bool run_kernel0 = true;  ///< when false, stage0 must already exist
  bool keep_matrix = true;  ///< retain the kernel-2 matrix in the result
};

/// Runs the full pipeline. Stages live under config.work_dir.
PipelineResult run_pipeline(const PipelineConfig& config,
                            PipelineBackend& backend,
                            const RunOptions& options = {});

}  // namespace prpb::core
