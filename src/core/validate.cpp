#include "core/validate.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sparse/dense.hpp"
#include "sparse/pagerank.hpp"
#include "util/error.hpp"

namespace prpb::core {

EigenCheck validate_against_eigenvector(const sparse::CsrMatrix& a,
                                        const std::vector<double>& r,
                                        double damping, double tol) {
  util::require(a.rows() == a.cols(), "validate: matrix must be square");
  util::require(r.size() == a.rows(), "validate: rank vector size mismatch");
  util::require(a.rows() <= 8192,
                "validate: dense eigenvector check limited to N <= 8192");

  const sparse::DenseMatrix g =
      sparse::pagerank_validation_matrix(a, damping);
  const auto eig = sparse::power_iteration(g, /*max_iterations=*/2000,
                                           /*tol=*/tol * 1e-2);

  EigenCheck check;
  check.eigenvalue = eig.eigenvalue;
  check.eigensolver_iterations = eig.iterations;
  const std::vector<double> rn = sparse::normalized1(r);
  const std::vector<double> en = sparse::normalized1(eig.eigenvector);
  double max_diff = 0.0;
  for (std::size_t i = 0; i < rn.size(); ++i)
    max_diff = std::max(max_diff, std::abs(rn[i] - en[i]));
  check.max_abs_diff = max_diff;
  check.pass = eig.converged && max_diff <= tol;
  return check;
}

double normalized_difference(const std::vector<double>& a,
                             const std::vector<double>& b) {
  util::require(a.size() == b.size(),
                "normalized_difference: size mismatch");
  const std::vector<double> an = sparse::normalized1(a);
  const std::vector<double> bn = sparse::normalized1(b);
  double max_diff = 0.0;
  for (std::size_t i = 0; i < an.size(); ++i)
    max_diff = std::max(max_diff, std::abs(an[i] - bn[i]));
  return max_diff;
}

bool ranks_agree(const std::vector<double>& a, const std::vector<double>& b,
                 double tol) {
  return normalized_difference(a, b) <= tol;
}

std::vector<std::uint64_t> top_k(const std::vector<double>& values,
                                 std::size_t k) {
  std::vector<std::uint64_t> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  k = std::min(k, order.size());
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(k),
                    order.end(), [&values](std::uint64_t x, std::uint64_t y) {
                      return values[x] != values[y] ? values[x] > values[y]
                                                    : x < y;
                    });
  order.resize(k);
  return order;
}

}  // namespace prpb::core
