#pragma once

#include <cstddef>

#include "core/backend.hpp"

namespace prpb::core {

/// Thread-parallel backend: the paper's sketched parallel decomposition
/// ("each processor holds a set of rows"). Kernel 0 generates shards
/// concurrently (the counter-based generator needs no communication),
/// kernel 1 uses the parallel merge sort, kernel 3 partitions the SpMV by
/// output entry via the transposed matrix. Results are bit-identical to
/// `native` for kernels 0-2 and fp-identical for kernel 3's additions
/// within each output entry.
class ParallelBackend final : public PipelineBackend {
 public:
  /// threads == 0 means hardware concurrency.
  explicit ParallelBackend(std::size_t threads = 0) : threads_(threads) {}

  [[nodiscard]] std::string name() const override { return "parallel"; }

  void kernel0(const KernelContext& ctx) override;
  void kernel1(const KernelContext& ctx) override;
  sparse::CsrMatrix kernel2(const KernelContext& ctx) override;
  std::vector<double> kernel3(const KernelContext& ctx,
                              const sparse::CsrMatrix& matrix) override;

 private:
  std::size_t threads_;
};

}  // namespace prpb::core
