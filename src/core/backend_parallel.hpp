#pragma once

#include <cstddef>
#include <memory>

#include "core/backend.hpp"
#include "util/threadpool.hpp"

namespace prpb::core {

/// Thread-parallel backend: the paper's sketched parallel decomposition
/// ("each processor holds a set of rows"). Kernel 0 generates shards
/// concurrently (the counter-based generator needs no communication),
/// kernel 1 uses the parallel merge sort, kernel 3 partitions the SpMV by
/// output entry via the transposed matrix. Results are bit-identical to
/// `native` for kernels 0-2 and fp-identical for kernel 3's additions
/// within each output entry.
///
/// With config.fast_path set, kernels 1-3 switch to the src/perf
/// implementations (radix partition sort, prefetched reads + parallel CSR
/// build, cache-blocked SpMV) — same results, the reference paths remain
/// selectable for ablation.
class ParallelBackend final : public PipelineBackend {
 public:
  /// threads == 0 means hardware concurrency.
  explicit ParallelBackend(std::size_t threads = 0) : threads_(threads) {}

  [[nodiscard]] std::string name() const override { return "parallel"; }

  void kernel0(const KernelContext& ctx) override;
  void kernel1(const KernelContext& ctx) override;
  sparse::CsrMatrix kernel2(const KernelContext& ctx) override;
  std::vector<double> kernel3(const KernelContext& ctx,
                              const sparse::CsrMatrix& matrix) override;

 private:
  /// The worker pool, created on first use and reused across kernels —
  /// per-kernel pool construction would pay thread spawn/join inside the
  /// timed sections.
  util::ThreadPool& pool();

  std::size_t threads_;
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace prpb::core
