// Canonical output checksums — the repo's answer to the paper's §V open
// question "What outputs should be recorded to validate correctness?".
//
// Every pipeline stage gets a compact deterministic digest:
//   * kernel 0/1 stages — an order-insensitive multiset hash of the edges
//     (so any shard layout / sort stability choice yields the same value
//     for the same edge multiset) plus an order-sensitive sequence hash
//     for the sorted stage;
//   * kernel 2 — a structural + value fingerprint of the CSR matrix;
//   * kernel 3 — a digest of the L1-normalized rank vector quantized to a
//     tolerance, so any backend within fp tolerance produces the same
//     digest.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/algorithm.hpp"
#include "gen/edge.hpp"
#include "io/stage_codec.hpp"
#include "io/stage_store.hpp"
#include "sparse/csr.hpp"

namespace prpb::core {

/// Order-insensitive multiset hash: identical for any permutation of the
/// same edges, different (w.h.p.) for any other multiset.
std::uint64_t edge_multiset_hash(const gen::EdgeList& edges);

/// Order-sensitive sequence hash: also pins the on-disk ordering.
std::uint64_t edge_sequence_hash(const gen::EdgeList& edges);

/// Hashes an edge stage (reads every shard in sorted shard order). The
/// digest is over decoded (start, end) records, so TSV and binary encodings
/// of the same edge sequence produce identical checksums.
struct StageChecksum {
  std::uint64_t multiset = 0;
  std::uint64_t sequence = 0;
  std::uint64_t edges = 0;
};
StageChecksum stage_checksum(io::StageStore& store, const std::string& stage,
                             const io::StageCodec& codec);
/// TSV form (the default stage encoding).
StageChecksum stage_checksum(io::StageStore& store, const std::string& stage);
/// Path form: hashes a TSV stage directory on disk.
StageChecksum stage_checksum(const std::filesystem::path& dir);

/// CSR fingerprint: shape, structure, and values quantized to `quantum`.
std::uint64_t matrix_fingerprint(const sparse::CsrMatrix& a,
                                 double quantum = 1e-9);

/// Rank digest: L1-normalize, quantize to `quantum`, hash.
std::uint64_t rank_digest(const std::vector<double>& ranks,
                          double quantum = 1e-9);

/// BFS-level digest: exact (integer levels admit no tolerance), order- and
/// length-sensitive — any correct BFS over the same matrix matches.
std::uint64_t levels_digest(const std::vector<std::int64_t>& levels);

/// CC-label digest: exact over the canonical min-vertex-id labeling.
std::uint64_t labels_digest(const std::vector<std::uint64_t>& labels);

/// Canonical digest of one algorithm-stage output (hex): rank_digest for
/// the pagerank family, levels_digest for bfs (mixed with the source
/// vertex), labels_digest for cc. This is the value cross-backend identity
/// is asserted on.
std::string algorithm_checksum(const AlgorithmResult& result);

/// Formats a digest as fixed-width hex for reports.
std::string digest_hex(std::uint64_t digest);

}  // namespace prpb::core
