// `native` backend: tuned serial C++ — the paper's C++ implementation.
// Fast TSV codec, LSD radix sort (or the external sort when the configured
// memory budget is exceeded), direct CSR construction, fused PageRank loop.
#include "core/backend_native.hpp"

#include "gen/generator.hpp"
#include "io/edge_files.hpp"
#include "io/prefetch.hpp"
#include "sort/external_sort.hpp"
#include "sort/policy.hpp"
#include "sparse/filter.hpp"
#include "sparse/pagerank.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace prpb::core {

void NativeBackend::kernel0(const KernelContext& ctx) {
  const PipelineConfig& config = ctx.config;
  const auto generator = gen::make_generator(config.generator, config.scale,
                                             config.edge_factor, config.seed);
  io::write_generated_edges(ctx.store, ctx.out_stage, *generator,
                            config.num_files, ctx.codec(), ctx.hooks);
}

void NativeBackend::kernel1(const KernelContext& ctx) {
  const PipelineConfig& config = ctx.config;
  if (config.memory_budget_bytes > 0) {
    const auto decision = sort::choose_sort_policy(
        config.num_edges(), config.memory_budget_bytes);
    if (decision.strategy == sort::SortStrategy::kExternal) {
      // The out-of-core sort streams through the StageStore, so it works
      // over any storage; runs spill as shards of the temp stage.
      ctx.log("kernel1(native): memory budget " +
              std::to_string(config.memory_budget_bytes) +
              " bytes exceeded; using external sort");
      ctx.metric("k1_external_sort", 1);
      sort::ExternalSortConfig ext;
      ext.memory_budget_bytes = config.memory_budget_bytes / 2;
      ext.output_shards = config.num_files;
      ext.stage_codec = &ctx.codec();
      ext.key = config.sort_key;
      ext.hooks = ctx.hooks;
      sort::external_sort_stage(ctx.store, ctx.in_stage, ctx.out_stage,
                                ctx.temp_stage, ext);
      return;
    }
  }
  gen::EdgeList edges;
  {
    // read_stage() rides the zero-copy view path; fast_path additionally
    // overlaps shard decode ahead of the append loop on a helper thread.
    const obs::Span span = ctx.span("k1/read");
    edges = ctx.read_stage(ctx.in_stage);
  }
  {
    const obs::Span span = ctx.span("k1/radix_sort");
    sort::radix_sort(edges, config.sort_key);
  }
  {
    const obs::Span span = ctx.span("k1/write");
    io::write_edge_list(ctx.store, ctx.out_stage, edges, config.num_files,
                        ctx.codec(), ctx.hooks);
  }
}

sparse::CsrMatrix NativeBackend::kernel2(const KernelContext& ctx) {
  gen::EdgeList edges;
  {
    const obs::Span span = ctx.span("k2/read");
    edges = ctx.read_stage(ctx.in_stage);
  }
  const obs::Span span = ctx.span("k2/filter_edges");
  return sparse::filter_edges(edges, ctx.config.num_vertices(),
                              &filter_report_);
}

std::vector<double> NativeBackend::kernel3(const KernelContext& ctx,
                                           const sparse::CsrMatrix& matrix) {
  const PipelineConfig& config = ctx.config;
  util::require(matrix.rows() == config.num_vertices(),
                "kernel3: matrix size does not match N = 2^scale");
  sparse::PageRankConfig pr;
  pr.iterations = config.iterations;
  pr.damping = config.damping;
  pr.seed = config.seed;
  pr.observer = ctx.k3_observer();
  if (config.csr == "compressed") {
    // Delta-varint column stream (DESIGN.md §12); the compressed vec_mat
    // replays the plain scatter's addition order, so ranks are
    // bit-identical to the plain form.
    sparse::CompressedCsrMatrix compressed;
    {
      const obs::Span span = ctx.span("k3/compress");
      compressed = sparse::CompressedCsrMatrix::from_csr(matrix);
    }
    return sparse::pagerank(compressed, pr);
  }
  return sparse::pagerank(matrix, pr);
}

}  // namespace prpb::core
