// `native` backend: tuned serial C++ — the paper's C++ implementation.
// Fast TSV codec, LSD radix sort (or the external sort when the configured
// memory budget is exceeded), direct CSR construction, fused PageRank loop.
#include "core/backend_native.hpp"

#include "gen/generator.hpp"
#include "io/edge_files.hpp"
#include "sort/external_sort.hpp"
#include "sort/policy.hpp"
#include "sparse/filter.hpp"
#include "sparse/pagerank.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace prpb::core {

namespace fs = std::filesystem;

void NativeBackend::kernel0(const PipelineConfig& config,
                            const fs::path& out_dir) {
  const auto generator = gen::make_generator(config.generator, config.scale,
                                             config.edge_factor, config.seed);
  io::write_generated_edges(*generator, out_dir, config.num_files,
                            io::Codec::kFast);
}

void NativeBackend::kernel1(const PipelineConfig& config,
                            const fs::path& in_dir, const fs::path& out_dir) {
  if (config.memory_budget_bytes > 0) {
    const auto decision = sort::choose_sort_policy(
        config.num_edges(), config.memory_budget_bytes);
    if (decision.strategy == sort::SortStrategy::kExternal) {
      util::log_info("kernel1(native): memory budget ",
                     config.memory_budget_bytes,
                     " bytes exceeded; using external sort");
      sort::ExternalSortConfig ext;
      ext.memory_budget_bytes = config.memory_budget_bytes / 2;
      ext.output_shards = config.num_files;
      ext.codec = io::Codec::kFast;
      ext.key = config.sort_key;
      sort::external_sort_stage(in_dir, out_dir, config.temp_dir(), ext);
      return;
    }
  }
  gen::EdgeList edges = io::read_all_edges(in_dir, io::Codec::kFast);
  sort::radix_sort(edges, config.sort_key);
  io::write_edge_list(edges, out_dir, config.num_files, io::Codec::kFast);
}

sparse::CsrMatrix NativeBackend::kernel2(const PipelineConfig& config,
                                         const fs::path& in_dir) {
  const gen::EdgeList edges = io::read_all_edges(in_dir, io::Codec::kFast);
  return sparse::filter_edges(edges, config.num_vertices(), &filter_report_);
}

std::vector<double> NativeBackend::kernel3(const PipelineConfig& config,
                                           const sparse::CsrMatrix& matrix) {
  util::require(matrix.rows() == config.num_vertices(),
                "kernel3: matrix size does not match N = 2^scale");
  sparse::PageRankConfig pr;
  pr.iterations = config.iterations;
  pr.damping = config.damping;
  pr.seed = config.seed;
  return sparse::pagerank(matrix, pr);
}

}  // namespace prpb::core
