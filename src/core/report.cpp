#include "core/report.hpp"

#include "core/checksum.hpp"
#include "util/json.hpp"

namespace prpb::core {

namespace {
void kernel_object(util::JsonWriter& json, const char* name,
                   const KernelMetrics& metrics) {
  json.begin_object(name);
  json.field("seconds", metrics.seconds);
  json.field("edges_processed", metrics.edges_processed);
  json.field("edges_per_second", metrics.edges_per_second());
  json.field("bytes_read", metrics.bytes_read);
  json.field("bytes_written", metrics.bytes_written);
  json.field("bytes_per_edge", metrics.bytes_per_edge());
  json.field("files_read", metrics.files_read);
  json.field("files_written", metrics.files_written);
  json.field("attempts", static_cast<std::int64_t>(metrics.attempts));
  json.field("resumed", metrics.resumed);
  // Hardware-counter attribution; omitted entirely on hosts where
  // perf_event_open is unavailable (the degradation contract).
  if (metrics.perf.any()) {
    json.begin_object("perf");
    metrics.perf.write_fields(json, metrics.seconds);
    json.end_object();
  }
  json.end_object();
}
}  // namespace

std::string run_report_json(const PipelineConfig& config,
                            const PipelineResult& result,
                            const std::optional<EigenCheck>& check,
                            const ReportOptions& options) {
  util::JsonWriter json;
  json.begin_object();
  json.field("benchmark", "pagerank-pipeline");

  json.begin_object("config");
  json.field("scale", static_cast<std::int64_t>(config.scale));
  json.field("edge_factor", static_cast<std::int64_t>(config.edge_factor));
  json.field("generator", config.generator);
  json.field("source", config.source);
  if (config.source == "external") {
    json.field("input", config.input_path.string());
  }
  json.begin_array("algorithms");
  for (const auto& algorithm : config.algorithms) json.value(algorithm);
  json.end_array();
  json.field("seed", config.seed);
  json.field("num_files", static_cast<std::uint64_t>(config.num_files));
  json.field("iterations", static_cast<std::int64_t>(config.iterations));
  json.field("damping", config.damping);
  // For external sources N and M are known only post-ingest, so they come
  // from the result, not the caller's (pre-run) configuration.
  json.field("num_vertices", result.num_vertices);
  json.field("num_edges", result.num_edges);
  json.field("storage", config.storage);
  json.field("stage_format", config.stage_format);
  json.field("csr", config.csr);
  json.field("fast_path", config.fast_path);
  json.end_object();

  if (!result.graph.source.empty()) {
    json.begin_object("graph");
    json.field("source", result.graph.source);
    json.field("vertices", result.graph.vertices);
    json.field("edges", result.graph.edges);
    if (result.graph.source == "external") {
      json.field("input", result.graph.input_path);
      if (!result.graph.input_format.empty()) {
        json.field("input_format", result.graph.input_format);
      }
      json.field("identity_remap", result.graph.identity_remap);
    }
    if (result.graph.has_degree_skew) {
      const auto skew_object = [&json](const char* name,
                                       const gen::DegreeSkew& skew) {
        json.begin_object(name);
        json.field("max_degree", skew.max_degree);
        json.field("mean_degree", skew.mean_degree);
        json.field("gini", skew.gini);
        json.field("top1pct_mass", skew.top1pct_mass);
        json.end_object();
      };
      skew_object("out_degree_skew", result.graph.out_degree_skew);
      skew_object("in_degree_skew", result.graph.in_degree_skew);
    }
    json.end_object();
  }

  json.field("backend", result.backend);
  if (!result.storage.empty()) json.field("storage", result.storage);
  if (!result.stage_format.empty()) {
    json.field("stage_format", result.stage_format);
  }
  json.field("fast_path", result.fast_path);
  if (!result.csr.empty()) json.field("csr", result.csr);
  if (result.csr_bytes_per_edge > 0.0) {
    json.field("csr_bytes_per_edge", result.csr_bytes_per_edge);
  }

  json.field("wall_seconds_total", result.wall_seconds_total);

  json.begin_object("resilience");
  json.field("fault_plan", result.fault_plan);
  json.field("retry_max_attempts",
             static_cast<std::int64_t>(result.retry_max_attempts));
  json.field("checkpointing", result.checkpointing);
  json.field("faults_injected", result.faults_injected);
  json.field("resumed", result.k0.resumed || result.k1.resumed);
  json.end_object();

  json.begin_object("kernels");
  kernel_object(json, "k0_generate", result.k0);
  kernel_object(json, "k1_sort", result.k1);
  kernel_object(json, "k2_filter", result.k2);
  kernel_object(json, "k3_pagerank", result.k3);
  json.end_object();

  if (!result.algorithms.empty()) {
    json.begin_array("algorithms");
    for (const AlgorithmRun& run : result.algorithms) {
      json.begin_object();
      json.field("algorithm", run.output.algorithm);
      json.field("implementation", run.output.implementation);
      json.field("seconds", run.metrics.seconds);
      json.field("edges_processed", run.metrics.edges_processed);
      json.field("edges_per_second", run.metrics.edges_per_second());
      json.field("iterations",
                 static_cast<std::int64_t>(run.output.iterations));
      if (!run.output.levels.empty()) {
        json.field("bfs_source", run.output.bfs_source);
      }
      json.field("attempts", static_cast<std::int64_t>(run.metrics.attempts));
      if (run.metrics.perf.any()) {
        json.begin_object("perf");
        run.metrics.perf.write_fields(json, run.metrics.seconds);
        json.end_object();
      }
      json.field("checksum", run.output.checksum);
      json.end_object();
    }
    json.end_array();
  }

  if (!result.metrics.empty()) result.metrics.write_json(json);

  if (!result.k3_iterations.empty()) {
    json.begin_array("k3_iterations");
    for (const auto& it : result.k3_iterations) {
      json.begin_object();
      json.field("iteration", static_cast<std::int64_t>(it.iteration));
      json.field("seconds", it.seconds);
      json.field("residual_l1", it.residual_l1);
      json.field("rank_sum", it.rank_sum);
      json.end_object();
    }
    json.end_array();
  }

  json.begin_object("matrix");
  json.field("rows", result.matrix.rows());
  json.field("cols", result.matrix.cols());
  json.field("nnz", result.matrix.nnz());
  json.end_object();

  if (options.include_checksums) {
    json.begin_object("checksums");
    if (!result.ranks.empty()) {
      json.field("rank_digest", digest_hex(rank_digest(result.ranks)));
    }
    if (result.matrix.nnz() > 0) {
      json.field("matrix_fingerprint",
                 digest_hex(matrix_fingerprint(result.matrix)));
    }
    for (const AlgorithmRun& run : result.algorithms) {
      json.field(run.output.algorithm, run.output.checksum);
    }
    json.end_object();
  }

  if (check.has_value()) {
    json.begin_object("eigen_check");
    json.field("pass", check->pass);
    json.field("max_abs_diff", check->max_abs_diff);
    json.field("eigensolver_iterations",
               static_cast<std::int64_t>(check->eigensolver_iterations));
    json.end_object();
  }

  json.end_object();
  return json.str();
}

}  // namespace prpb::core
