#include "core/backend_parallel.hpp"

#include <cmath>
#include <optional>

#include "gen/generator.hpp"
#include "io/edge_batch.hpp"
#include "io/edge_files.hpp"
#include "io/prefetch.hpp"
#include "io/tsv.hpp"
#include "perf/csr_build.hpp"
#include "perf/radix_partition.hpp"
#include "perf/spmv_block.hpp"
#include "perf/spmv_compressed.hpp"
#include "rand/rng.hpp"
#include "sort/edge_sort.hpp"
#include "sparse/filter.hpp"
#include "sparse/pagerank.hpp"
#include "util/error.hpp"
#include "util/threadpool.hpp"
#include "util/timer.hpp"

namespace prpb::core {

util::ThreadPool& ParallelBackend::pool() {
  if (!pool_) pool_ = std::make_unique<util::ThreadPool>(threads_);
  return *pool_;
}

void ParallelBackend::kernel0(const KernelContext& ctx) {
  const PipelineConfig& config = ctx.config;
  const auto generator = gen::make_generator(config.generator, config.scale,
                                             config.edge_factor, config.seed);
  ctx.store.clear_stage(ctx.out_stage);
  const io::StageCodec& codec = ctx.codec();
  const auto bounds =
      io::shard_boundaries(generator->num_edges(), config.num_files);

  std::vector<std::future<void>> futures;
  futures.reserve(config.num_files);
  for (std::size_t s = 0; s < config.num_files; ++s) {
    futures.push_back(pool().submit([&, s] {
      io::ShardWriter writer(ctx.store, ctx.out_stage,
                             io::shard_name(s, codec), codec, ctx.hooks);
      gen::EdgeList batch;
      constexpr std::uint64_t kBatch = io::kDefaultBatchEdges;
      for (std::uint64_t lo = bounds[s]; lo < bounds[s + 1]; lo += kBatch) {
        const std::uint64_t hi =
            std::min<std::uint64_t>(bounds[s + 1], lo + kBatch);
        batch.clear();
        generator->generate_range(lo, hi, batch);
        writer.append(batch);
      }
      writer.close();
    }));
  }
  for (auto& future : futures) future.get();
}

void ParallelBackend::kernel1(const KernelContext& ctx) {
  const PipelineConfig& config = ctx.config;
  gen::EdgeList edges;
  {
    const obs::Span span = ctx.span("k1/read");
    edges = ctx.read_stage(ctx.in_stage);
  }
  if (config.fast_path) {
    const obs::Span span = ctx.span("k1/radix_partition");
    perf::radix_partition_sort(edges, pool(), config.sort_key);
  } else {
    const obs::Span span = ctx.span("k1/merge_sort");
    sort::parallel_merge_sort(edges, pool(), config.sort_key);
  }
  const obs::Span span = ctx.span("k1/write");
  io::write_edge_list(ctx.store, ctx.out_stage, edges, config.num_files,
                      ctx.codec(), ctx.hooks);
}

sparse::CsrMatrix ParallelBackend::kernel2(const KernelContext& ctx) {
  const std::uint64_t n = ctx.config.num_vertices();
  if (ctx.config.fast_path) {
    // Prefetched read (decode overlaps the consumer's append), then the
    // per-task partial-degree CSR build and the shared filter reference.
    gen::EdgeList edges;
    {
      const obs::Span span = ctx.span("k2/read");
      edges = ctx.read_stage(ctx.in_stage);
    }
    const obs::Span span = ctx.span("k2/build_filter");
    sparse::CsrMatrix matrix = perf::build_csr_parallel(edges, n, n, pool());
    sparse::apply_filter(matrix);
    return matrix;
  }
  // Row decomposition per the paper; at this repo's default configuration
  // the build is bandwidth-bound, so only the parse is parallelized (by
  // shard), with construction following serially on the gathered edges.
  const auto shards = ctx.store.list(ctx.in_stage);
  const io::StageCodec& codec = ctx.codec();
  std::vector<gen::EdgeList> parts(shards.size());
  std::vector<std::future<void>> futures;
  futures.reserve(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    futures.push_back(pool().submit([&, i] {
      parts[i] = io::read_edge_shard(ctx.store, ctx.in_stage, shards[i],
                                     codec, ctx.hooks);
    }));
  }
  for (auto& future : futures) future.get();
  gen::EdgeList edges;
  for (auto& part : parts) {
    edges.insert(edges.end(), part.begin(), part.end());
    part.clear();
    part.shrink_to_fit();
  }
  const obs::Span span = ctx.span("k2/filter_edges");
  return sparse::filter_edges(edges, n, nullptr);
}

std::vector<double> ParallelBackend::kernel3(const KernelContext& ctx,
                                             const sparse::CsrMatrix& matrix) {
  const PipelineConfig& config = ctx.config;
  sparse::PageRankConfig pr;
  pr.iterations = config.iterations;
  pr.damping = config.damping;
  pr.seed = config.seed;
  pr.validate();
  util::require(matrix.rows() == matrix.cols(),
                "kernel3: matrix must be square");

  // y = r·A computed as y[j] = Σ Aᵀ(j, i) · r[i]: each output entry owned by
  // exactly one task, so rows of Aᵀ partition the work with no atomics.
  sparse::CsrMatrix at = matrix.transpose();
  // --csr compressed: re-encode Aᵀ's column indices as delta-varint groups
  // and release the 8-byte-per-edge plain index array; the iteration loop
  // then streams the compressed form through the same blocked SpMV
  // (bit-identical accumulation order either way).
  std::optional<sparse::CompressedCsrMatrix> cat;
  if (config.csr == "compressed") {
    const obs::Span span = ctx.span("k3/compress");
    cat.emplace(sparse::CompressedCsrMatrix::from_csr(at));
    at = sparse::CsrMatrix();
  }
  std::vector<double> r =
      sparse::pagerank_initial_vector(matrix.rows(), config.seed);
  std::vector<double> y(matrix.cols(), 0.0);
  const double c = config.damping;
  const auto n = static_cast<double>(matrix.rows());

  const sparse::IterationObserver observer = ctx.k3_observer();
  std::vector<double> previous;
  util::Stopwatch iter_watch;
  for (int it = 0; it < config.iterations; ++it) {
    if (observer) {
      previous = r;
      iter_watch.restart();
    }
    double r_sum = 0.0;
    for (const double x : r) r_sum += x;
    // Blocked over the source axis so a block of r stays cache-resident;
    // per-row accumulation order is unchanged (bit-identical). Small
    // matrices get a single block — r is cache-resident regardless.
    const std::uint64_t block =
        config.fast_path && matrix.cols() >= perf::kSpmvBlockMinCols
            ? perf::kDefaultSpmvBlockCols
            : std::max<std::uint64_t>(1, matrix.cols());
    if (cat) {
      perf::transposed_spmv_compressed(*cat, r, y, pool(), block);
    } else if (config.fast_path) {
      perf::transposed_spmv_blocked(at, r, y, pool(), block);
    } else {
      util::parallel_for_chunks(
          pool(), 0, at.rows(), [&](std::uint64_t lo, std::uint64_t hi) {
            for (std::uint64_t j = lo; j < hi; ++j) {
              double acc = 0.0;
              for (std::uint64_t k = at.row_ptr()[j]; k < at.row_ptr()[j + 1];
                   ++k) {
                acc += at.values()[k] * r[at.col_idx()[k]];
              }
              y[j] = acc;
            }
          });
    }
    const double add = (1.0 - c) * r_sum / n;
    for (std::size_t i = 0; i < r.size(); ++i) r[i] = c * y[i] + add;

    if (observer) {
      sparse::IterationStats stats;
      stats.iteration = it;
      stats.seconds = iter_watch.seconds();
      for (std::size_t i = 0; i < r.size(); ++i) {
        stats.residual_l1 += std::abs(r[i] - previous[i]);
        stats.rank_sum += r[i];
      }
      observer(stats);
    }
  }
  return r;
}

}  // namespace prpb::core
