#include "core/backend_parallel.hpp"

#include "gen/generator.hpp"
#include "io/edge_files.hpp"
#include "io/file_stream.hpp"
#include "rand/rng.hpp"
#include "sort/edge_sort.hpp"
#include "sparse/filter.hpp"
#include "sparse/pagerank.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/threadpool.hpp"

namespace prpb::core {

namespace fs = std::filesystem;

void ParallelBackend::kernel0(const PipelineConfig& config,
                              const fs::path& out_dir) {
  const auto generator = gen::make_generator(config.generator, config.scale,
                                             config.edge_factor, config.seed);
  util::ensure_dir(out_dir);
  util::clear_dir(out_dir);
  const auto bounds =
      io::shard_boundaries(generator->num_edges(), config.num_files);

  util::ThreadPool pool(threads_);
  std::vector<std::future<void>> futures;
  futures.reserve(config.num_files);
  for (std::size_t s = 0; s < config.num_files; ++s) {
    futures.push_back(pool.submit([&, s] {
      io::FileWriter writer(io::shard_path(out_dir, s));
      gen::EdgeList batch;
      constexpr std::uint64_t kBatch = 1 << 16;
      for (std::uint64_t lo = bounds[s]; lo < bounds[s + 1]; lo += kBatch) {
        const std::uint64_t hi =
            std::min<std::uint64_t>(bounds[s + 1], lo + kBatch);
        batch.clear();
        generator->generate_range(lo, hi, batch);
        for (const auto& edge : batch)
          io::append_edge_fast(writer.buffer(), edge);
        writer.maybe_flush();
      }
      writer.close();
    }));
  }
  for (auto& future : futures) future.get();
}

void ParallelBackend::kernel1(const PipelineConfig& config,
                              const fs::path& in_dir,
                              const fs::path& out_dir) {
  gen::EdgeList edges = io::read_all_edges(in_dir, io::Codec::kFast);
  util::ThreadPool pool(threads_);
  sort::parallel_merge_sort(edges, pool, config.sort_key);
  io::write_edge_list(edges, out_dir, config.num_files, io::Codec::kFast);
}

sparse::CsrMatrix ParallelBackend::kernel2(const PipelineConfig& config,
                                           const fs::path& in_dir) {
  // Row decomposition per the paper; at this repo's default configuration
  // the build is bandwidth-bound, so only the parse is parallelized (by
  // shard), with construction following serially on the gathered edges.
  const auto files = util::list_files_sorted(in_dir);
  std::vector<gen::EdgeList> parts(files.size());
  util::ThreadPool pool(threads_);
  std::vector<std::future<void>> futures;
  futures.reserve(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    futures.push_back(pool.submit([&, i] {
      parts[i] = io::read_edge_file(files[i], io::Codec::kFast);
    }));
  }
  for (auto& future : futures) future.get();
  gen::EdgeList edges;
  for (auto& part : parts) {
    edges.insert(edges.end(), part.begin(), part.end());
    part.clear();
    part.shrink_to_fit();
  }
  return sparse::filter_edges(edges, config.num_vertices(), nullptr);
}

std::vector<double> ParallelBackend::kernel3(const PipelineConfig& config,
                                             const sparse::CsrMatrix& matrix) {
  sparse::PageRankConfig pr;
  pr.iterations = config.iterations;
  pr.damping = config.damping;
  pr.seed = config.seed;
  pr.validate();
  util::require(matrix.rows() == matrix.cols(),
                "kernel3: matrix must be square");

  // y = r·A computed as y[j] = Σ Aᵀ(j, i) · r[i]: each output entry owned by
  // exactly one task, so rows of Aᵀ partition the work with no atomics.
  const sparse::CsrMatrix at = matrix.transpose();
  std::vector<double> r =
      sparse::pagerank_initial_vector(matrix.rows(), config.seed);
  std::vector<double> y(matrix.cols(), 0.0);
  const double c = config.damping;
  const auto n = static_cast<double>(matrix.rows());

  util::ThreadPool pool(threads_);
  for (int it = 0; it < config.iterations; ++it) {
    double r_sum = 0.0;
    for (const double x : r) r_sum += x;
    util::parallel_for_chunks(
        pool, 0, at.rows(), [&](std::uint64_t lo, std::uint64_t hi) {
          for (std::uint64_t j = lo; j < hi; ++j) {
            double acc = 0.0;
            for (std::uint64_t k = at.row_ptr()[j]; k < at.row_ptr()[j + 1];
                 ++k) {
              acc += at.values()[k] * r[at.col_idx()[k]];
            }
            y[j] = acc;
          }
        });
    const double add = (1.0 - c) * r_sum / n;
    for (std::size_t i = 0; i < r.size(); ++i) r[i] = c * y[i] + add;
  }
  return r;
}

}  // namespace prpb::core
