#include "core/graph_source.hpp"

#include "core/runner.hpp"
#include "io/edge_files.hpp"
#include "io/edge_list.hpp"
#include "util/error.hpp"

namespace prpb::core {

namespace {

/// Degree-skew statistics over a remapped (dense-id) edge list.
void fill_degree_skew(GraphSummary& summary, const gen::EdgeList& edges,
                      std::uint64_t vertices) {
  std::vector<std::uint64_t> out_degrees(vertices, 0);
  std::vector<std::uint64_t> in_degrees(vertices, 0);
  for (const auto& edge : edges) {
    ++out_degrees[edge.u];
    ++in_degrees[edge.v];
  }
  summary.out_degree_skew = gen::degree_skew(out_degrees);
  summary.in_degree_skew = gen::degree_skew(in_degrees);
  summary.has_degree_skew = true;
}

/// The paper's K0: the backend's own kernel0 writes the configured
/// generator's edges. N and M come straight from the configuration.
class GeneratorSource final : public GraphSource {
 public:
  [[nodiscard]] std::string name() const override { return "generator"; }

  [[nodiscard]] std::vector<std::string> output_stages() const override {
    return {stages::kStage0};
  }

  GraphSummary materialize(const KernelContext& ctx,
                           PipelineBackend& backend) override {
    backend.kernel0(ctx);
    return recover(ctx);
  }

  GraphSummary recover(const KernelContext& ctx) override {
    GraphSummary summary;
    summary.source = "generator";
    summary.vertices = ctx.config.num_vertices();
    summary.edges = ctx.config.num_edges();
    return summary;
  }
};

/// Real-graph ingestion: parse the input, densify vertex ids, persist the
/// dictionary, write the edges as the k0_edges stage.
class ExternalSource final : public GraphSource {
 public:
  [[nodiscard]] std::string name() const override { return "external"; }

  [[nodiscard]] std::vector<std::string> output_stages() const override {
    // Dictionary first: k0_edges committing last means a crash between the
    // two writes leaves an invalid kernel-0 checkpoint, never a valid one
    // with a missing dictionary.
    return {stages::kStageDict, stages::kStage0};
  }

  GraphSummary materialize(const KernelContext& ctx,
                           PipelineBackend& backend) override {
    (void)backend;  // ingestion is backend-independent by design
    const PipelineConfig& config = ctx.config;
    io::ExternalEdgeList input = io::read_edge_list(config.input_path);
    const io::VertexRemap remap = io::build_vertex_remap(input.edges);
    io::apply_vertex_remap(remap, input.edges);

    // Dictionary stage: u = dense id, v = original file id.
    gen::EdgeList dictionary(remap.vertices());
    for (std::uint64_t dense = 0; dense < remap.vertices(); ++dense) {
      dictionary[dense] = gen::Edge{dense, remap.dense_to_original[dense]};
    }
    io::write_edge_list(ctx.store, stages::kStageDict, dictionary, 1,
                        ctx.codec(), ctx.hooks);
    io::write_edge_list(ctx.store, ctx.out_stage, input.edges,
                        config.num_files, ctx.codec(), ctx.hooks);

    GraphSummary summary;
    summary.source = "external";
    summary.vertices = remap.vertices();
    summary.edges = input.edges.size();
    summary.input_path = config.input_path.string();
    summary.input_format =
        config.input_path.extension() == ".mtx"
            ? "matrix-market"
            : "edge-list (" + input.format.delimiter_name() + ")";
    summary.identity_remap = remap.identity();
    fill_degree_skew(summary, input.edges, remap.vertices());
    ctx.log("external source '" + summary.input_path + "': " +
            std::to_string(summary.edges) + " edges, " +
            std::to_string(summary.vertices) + " vertices (" +
            (summary.identity_remap ? "identity" : "remapped") +
            " vertex ids)");
    return summary;
  }

  GraphSummary recover(const KernelContext& ctx) override {
    GraphSummary summary;
    summary.source = "external";
    summary.input_path = ctx.config.input_path.string();

    // N comes from the persisted dictionary — never from re-reading the
    // input file, which may have changed or disappeared since the stage
    // was materialized.
    gen::EdgeList dictionary =
        io::read_all_edges(ctx.store, stages::kStageDict, ctx.codec(),
                           ctx.hooks);
    summary.vertices = dictionary.size();
    summary.identity_remap = true;
    for (const auto& entry : dictionary) {
      if (entry.u != entry.v) {
        summary.identity_remap = false;
        break;
      }
    }

    // One bounded-memory pass over the stage recovers M and the degrees.
    std::vector<std::uint64_t> out_degrees(summary.vertices, 0);
    std::vector<std::uint64_t> in_degrees(summary.vertices, 0);
    std::uint64_t edges = 0;
    io::stream_all_edges(ctx.store, stages::kStage0, ctx.codec(),
                         [&](const gen::EdgeList& batch) {
                           edges += batch.size();
                           for (const auto& edge : batch) {
                             ++out_degrees[edge.u];
                             ++in_degrees[edge.v];
                           }
                         },
                         ctx.hooks);
    summary.edges = edges;
    summary.out_degree_skew = gen::degree_skew(out_degrees);
    summary.in_degree_skew = gen::degree_skew(in_degrees);
    summary.has_degree_skew = true;
    return summary;
  }
};

}  // namespace

std::unique_ptr<GraphSource> make_graph_source(const PipelineConfig& config) {
  if (config.source == "generator") {
    return std::make_unique<GeneratorSource>();
  }
  if (config.source == "external") return std::make_unique<ExternalSource>();
  std::string valid;
  for (const auto& known : source_names()) {
    if (!valid.empty()) valid += ", ";
    valid += known;
  }
  throw util::ConfigError{"unknown source '" + config.source +
                          "' (valid values: " + valid + ")"};
}

std::vector<std::string> source_names() { return {"generator", "external"}; }

}  // namespace prpb::core
