#include "core/algorithm.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace prpb::core {

namespace {

std::string joined_algorithm_names() {
  std::string out;
  for (const auto& name : algorithm_names()) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

}  // namespace

std::vector<std::string> algorithm_names() {
  return {"pagerank", "pagerank_dopt", "bfs", "cc"};
}

bool is_algorithm_name(const std::string& name) {
  const auto names = algorithm_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

std::vector<std::string> parse_algorithm_list(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream stream{csv};
  std::string token;
  while (std::getline(stream, token, ',')) {
    const auto begin = token.find_first_not_of(" \t");
    if (begin == std::string::npos) {
      throw util::ConfigError{"empty algorithm name in list '" + csv +
                              "' (valid values: " + joined_algorithm_names() +
                              ")"};
    }
    const auto end = token.find_last_not_of(" \t");
    token = token.substr(begin, end - begin + 1);
    if (!is_algorithm_name(token)) {
      throw util::ConfigError{"unknown algorithm '" + token +
                              "' (valid values: " + joined_algorithm_names() +
                              ")"};
    }
    if (std::find(out.begin(), out.end(), token) == out.end()) {
      out.push_back(token);
    }
  }
  if (out.empty()) {
    throw util::ConfigError{"empty algorithm list (valid values: " +
                            joined_algorithm_names() + ")"};
  }
  return out;
}

}  // namespace prpb::core
