// KernelContext — everything a kernel is allowed to touch.
//
// The paper's kernels are mathematically fixed stage-to-stage transforms;
// the harness decides where stages live (StageStore), what they are called
// (the runner's stage-naming scheme), and what gets measured. Passing this
// bundle instead of raw filesystem paths is what makes storage swappable
// (dir vs. mem ablation) and per-kernel I/O observable.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "core/config.hpp"
#include "io/stage_store.hpp"
#include "util/log.hpp"

namespace prpb::core {

/// Named-counter sink for kernel-side observations (sort strategy taken,
/// filter statistics, ...). The runner folds the collected values into the
/// run report. Keys repeat-add, so kernels can accumulate.
class MetricsSink {
 public:
  void add(const std::string& key, double value) { values_[key] += value; }
  void set(const std::string& key, double value) { values_[key] = value; }
  [[nodiscard]] const std::map<std::string, double>& values() const {
    return values_;
  }

 private:
  std::map<std::string, double> values_;
};

struct KernelContext {
  const PipelineConfig& config;
  io::StageStore& store;
  /// Stage read by this kernel (empty for kernel 0; kernel 3 reads the
  /// in-memory kernel-2 matrix, not a stage).
  std::string in_stage;
  /// Stage written by this kernel (empty for kernels 2-3).
  std::string out_stage;
  /// Scratch stage for spills (external sort runs).
  std::string temp_stage;
  /// Optional named-counter sink (may be null).
  MetricsSink* metrics = nullptr;
  /// Optional log override; kernels log through log() below.
  std::function<void(std::string_view)> logger;

  void log(const std::string& message) const {
    if (logger) {
      logger(message);
    } else {
      util::log_info(message);
    }
  }

  void metric(const std::string& key, double value) const {
    if (metrics != nullptr) metrics->add(key, value);
  }

  /// The stage codec this pipeline is configured with. `flavor` picks the
  /// TSV parse/format flavor (interpreted-stack backends pass kGeneric).
  [[nodiscard]] const io::StageCodec& codec(
      io::Codec flavor = io::Codec::kFast) const {
    return make_stage_codec(config, flavor);
  }
};

}  // namespace prpb::core
