// KernelContext — everything a kernel is allowed to touch.
//
// The paper's kernels are mathematically fixed stage-to-stage transforms;
// the harness decides where stages live (StageStore), what they are called
// (the runner's stage-naming scheme), and what gets measured. Passing this
// bundle instead of raw filesystem paths is what makes storage swappable
// (dir vs. mem ablation) and per-kernel I/O observable. Observability rides
// along the same way: the runner threads an obs::Hooks bundle (trace
// recorder + metrics registry) through the context, so kernels emit
// attributed sub-spans and typed metrics without owning either.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "io/edge_files.hpp"
#include "io/prefetch.hpp"
#include "io/stage_store.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/trace.hpp"
#include "sparse/pagerank.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace prpb::core {

struct KernelContext {
  const PipelineConfig& config;
  io::StageStore& store;
  /// Stage read by this kernel (empty for kernel 0; kernel 3 reads the
  /// in-memory kernel-2 matrix, not a stage).
  std::string in_stage;
  /// Stage written by this kernel (empty for kernels 2-3).
  std::string out_stage;
  /// Scratch stage for spills (external sort runs).
  std::string temp_stage;
  /// Optional observability hooks (trace recorder, metrics registry);
  /// both members may be null.
  obs::Hooks hooks{};
  /// When set, per-iteration kernel-3 telemetry is appended here (the
  /// runner points this at the PipelineResult's k3_iterations).
  std::vector<sparse::IterationStats>* k3_sink = nullptr;
  /// Optional log override; kernels log through log() below.
  std::function<void(std::string_view)> logger{};

  void log(const std::string& message) const {
    if (logger) {
      logger(message);
    } else {
      util::log_info(message);
    }
  }

  /// Accumulates into a named counter (no-op without a registry).
  void metric(const std::string& key, double value) const {
    if (hooks.metrics != nullptr) hooks.metrics->counter(key).add(value);
  }

  /// Opens a sub-kernel span ("k1/radix_sort", ...). Inactive — a null
  /// check, nothing more — when tracing is off.
  [[nodiscard]] obs::Span span(const char* name) const {
    return obs::Span(hooks.trace, name);
  }

  /// Per-iteration kernel-3 observer: appends to k3_sink and records a
  /// "k3/iter" span per iteration — with a hardware-counter snapshot of
  /// the interval since the previous iteration when a live PerfCounterGroup
  /// is attached. Empty (falsy) when neither telemetry consumer is
  /// attached, so backends can skip the residual bookkeeping.
  [[nodiscard]] sparse::IterationObserver k3_observer() const {
    if (k3_sink == nullptr && !hooks.tracing()) return {};
    auto* sink = k3_sink;
    const obs::Hooks h = hooks;
    const obs::PerfCounterGroup* perf =
        h.tracing() && h.perf != nullptr && h.perf->active() ? h.perf
                                                            : nullptr;
    return [sink, h, perf,
            mark = perf != nullptr
                       ? perf->read()
                       : obs::PerfReading{}](
               const sparse::IterationStats& stats) mutable {
      if (sink != nullptr) sink->push_back(stats);
      if (h.tracing()) {
        // The iteration just ended; back-date the span start by its
        // duration so consecutive iterations tile without overlapping.
        const std::uint64_t end = h.trace->now_us();
        const auto dur = std::min(
            static_cast<std::uint64_t>(stats.seconds * 1e6), end);
        util::JsonWriter args;
        args.begin_object();
        args.field("iteration", static_cast<std::int64_t>(stats.iteration));
        args.field("residual_l1", stats.residual_l1);
        args.field("rank_sum", stats.rank_sum);
        if (perf != nullptr) {
          perf->delta_and_advance(mark).write_fields(args, stats.seconds);
        }
        args.end_object();
        h.trace->record_complete("k3/iter", end - dur, dur, args.str());
      }
    };
  }

  /// The stage codec this pipeline is configured with. `flavor` picks the
  /// TSV parse/format flavor (interpreted-stack backends pass kGeneric).
  [[nodiscard]] const io::StageCodec& codec(
      io::Codec flavor = io::Codec::kFast) const {
    return make_stage_codec(config, flavor);
  }

  /// Reads an entire stage as a decoded edge list over the zero-copy view
  /// path. With config.fast_path set, shard decode is additionally
  /// overlapped ahead of the append loop on a prefetch thread. This is the
  /// one place the fast-path read dispatch lives; backends call this
  /// instead of re-spelling the ternary.
  [[nodiscard]] gen::EdgeList read_stage(
      const std::string& stage, io::Codec flavor = io::Codec::kFast) const {
    return config.fast_path
               ? io::read_all_edges_prefetched(store, stage, codec(flavor),
                                               hooks)
               : io::read_all_edges(store, stage, codec(flavor), hooks);
  }
};

}  // namespace prpb::core
