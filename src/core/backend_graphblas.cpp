#include "core/backend_graphblas.hpp"

#include <cmath>

#include "core/backend_native.hpp"
#include "core/checksum.hpp"
#include "grb/algorithms.hpp"
#include "grb/ops.hpp"
#include "io/edge_files.hpp"
#include "sparse/algorithms.hpp"
#include "sparse/pagerank.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace prpb::core {

void GraphBlasBackend::kernel0(const KernelContext& ctx) {
  NativeBackend native;
  native.kernel0(ctx);
}

void GraphBlasBackend::kernel1(const KernelContext& ctx) {
  NativeBackend native;
  native.kernel1(ctx);
}

sparse::CsrMatrix GraphBlasBackend::kernel2(const KernelContext& ctx) {
  const gen::EdgeList edges = ctx.read_stage(ctx.in_stage);
  const std::uint64_t n = ctx.config.num_vertices();

  // A = GrB_Matrix_build(u, v, 1, plus-dup)
  std::vector<std::uint64_t> rows(edges.size());
  std::vector<std::uint64_t> cols(edges.size());
  const std::vector<double> ones(edges.size(), 1.0);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    rows[i] = edges[i].u;
    cols[i] = edges[i].v;
  }
  grb::Matrix a = grb::Matrix::build(rows, cols, ones, n, n);

  // din = reduce over columns (plus monoid); max_din = reduce(din, max).
  const grb::Vector din = grb::reduce_columns<grb::Plus>(a);
  const double max_din = grb::reduce<grb::Max>(din);

  // GrB_select: keep entries whose column is neither a super-node nor leaf.
  a = grb::select(a, [&din, max_din](std::uint64_t, std::uint64_t col,
                                     double) {
    const double d = din[col];
    return !((max_din > 0.0 && d == max_din) || d == 1.0);
  });

  // dout = reduce over rows; A = diag(1/dout) ·(+,*) A.
  const grb::Vector dout = grb::reduce_rows<grb::Plus>(a);
  const grb::Vector inv_dout = grb::apply(
      dout, [](double d) { return d > 0.0 ? 1.0 / d : 0.0; });
  const grb::Matrix d_inv = grb::diag(inv_dout);
  a = grb::mxm<grb::PlusTimes>(d_inv, a);

  return a.csr();
}

std::vector<double> GraphBlasBackend::kernel3(const KernelContext& ctx,
                                              const sparse::CsrMatrix& matrix) {
  const PipelineConfig& config = ctx.config;
  util::require(matrix.rows() == config.num_vertices(),
                "kernel3: matrix size does not match N = 2^scale");
  const std::uint64_t n = matrix.rows();
  const grb::Matrix a{matrix};
  grb::Vector r{sparse::pagerank_initial_vector(n, config.seed)};
  const double c = config.damping;

  const sparse::IterationObserver observer = ctx.k3_observer();
  std::vector<double> previous;
  util::Stopwatch iter_watch;
  for (int it = 0; it < config.iterations; ++it) {
    if (observer) {
      previous = r.data();
      iter_watch.restart();
    }
    // r = c * (r vxm A) + (1-c)/N * reduce(r, plus)
    const double r_sum = grb::reduce<grb::Plus>(r);
    grb::Vector y = grb::vxm<grb::PlusTimes>(r, a);
    const double add = (1.0 - c) * r_sum / static_cast<double>(n);
    r = grb::apply(y, [c, add](double x) { return c * x + add; });

    if (observer) {
      sparse::IterationStats stats;
      stats.iteration = it;
      stats.seconds = iter_watch.seconds();
      const std::vector<double>& current = r.data();
      for (std::size_t i = 0; i < current.size(); ++i) {
        stats.residual_l1 += std::abs(current[i] - previous[i]);
        stats.rank_sum += current[i];
      }
      observer(stats);
    }
  }
  return r.data();
}

AlgorithmResult GraphBlasBackend::run_algorithm(
    const KernelContext& ctx, const sparse::CsrMatrix& matrix,
    const std::string& algorithm) {
  if (algorithm == "bfs" && matrix.rows() > 0) {
    AlgorithmResult result;
    result.algorithm = algorithm;
    result.implementation = "grb-vxm";
    result.bfs_source = sparse::bfs_default_source(matrix);
    const grb::Matrix a{matrix};
    result.levels = grb::bfs_levels(a, result.bfs_source);
    std::int64_t depth = 0;
    for (const std::int64_t level : result.levels) {
      if (level > depth) depth = level;
    }
    result.iterations = static_cast<int>(depth);
    result.work_edges = matrix.nnz();
    result.checksum = algorithm_checksum(result);
    return result;
  }
  if (algorithm == "cc") {
    AlgorithmResult result;
    result.algorithm = algorithm;
    result.implementation = "grb-vxm";
    const grb::Matrix a{matrix};
    result.labels = grb::connected_components(a);
    result.iterations = 1;
    result.work_edges = matrix.nnz();
    result.checksum = algorithm_checksum(result);
    return result;
  }
  return PipelineBackend::run_algorithm(ctx, matrix, algorithm);
}

}  // namespace prpb::core
