#pragma once

#include "core/backend.hpp"

namespace prpb::core {

/// Dataframe backend (the paper's "Python with Pandas" niche): kernels 0-2
/// run through the typed column engine — generic delimited I/O,
/// sort_values, groupby aggregation — and kernel 3 drops into the sparse
/// substrate exactly the way a pandas pipeline drops into scipy.sparse.
class DataFrameBackend final : public PipelineBackend {
 public:
  [[nodiscard]] std::string name() const override { return "dataframe"; }

  void kernel0(const PipelineConfig& config,
               const std::filesystem::path& out_dir) override;
  void kernel1(const PipelineConfig& config,
               const std::filesystem::path& in_dir,
               const std::filesystem::path& out_dir) override;
  sparse::CsrMatrix kernel2(const PipelineConfig& config,
                            const std::filesystem::path& in_dir) override;
  std::vector<double> kernel3(const PipelineConfig& config,
                              const sparse::CsrMatrix& matrix) override;
};

}  // namespace prpb::core
