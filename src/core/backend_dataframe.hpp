#pragma once

#include "core/backend.hpp"

namespace prpb::core {

/// Dataframe backend (the paper's "Python with Pandas" niche): kernels 0-2
/// run through the typed column engine — generic delimited I/O,
/// sort_values, groupby aggregation — and kernel 3 drops into the sparse
/// substrate exactly the way a pandas pipeline drops into scipy.sparse.
class DataFrameBackend final : public PipelineBackend {
 public:
  [[nodiscard]] std::string name() const override { return "dataframe"; }

  void kernel0(const KernelContext& ctx) override;
  void kernel1(const KernelContext& ctx) override;
  sparse::CsrMatrix kernel2(const KernelContext& ctx) override;
  std::vector<double> kernel3(const KernelContext& ctx,
                              const sparse::CsrMatrix& matrix) override;
};

}  // namespace prpb::core
