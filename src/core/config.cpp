#include "core/config.hpp"

#include "core/algorithm.hpp"
#include "util/error.hpp"

namespace prpb::core {

void PipelineConfig::validate() const {
  util::require(scale >= 1 && scale <= 32,
                "pipeline: scale must be in [1, 32]");
  util::require(edge_factor >= 1, "pipeline: edge_factor must be >= 1");
  util::require(num_files >= 1, "pipeline: num_files must be >= 1");
  util::require(iterations >= 0, "pipeline: iterations must be >= 0");
  util::require(damping >= 0.0 && damping <= 1.0,
                "pipeline: damping must be in [0, 1]");
  util::require(generator == "kronecker" || generator == "bter" ||
                    generator == "ppl",
                "pipeline: generator must be kronecker|bter|ppl");
  if (source != "generator" && source != "external") {
    throw util::ConfigError("pipeline: unknown source '" + source +
                            "' (valid values: generator, external)");
  }
  if (source == "external") {
    util::require(!input_path.empty(),
                  "pipeline: the external source requires an input path "
                  "(--input <edge-list file>)");
  } else {
    util::require(input_path.empty(),
                  "pipeline: an input path requires source = external");
  }
  util::require(!algorithms.empty(), "pipeline: algorithm list is empty");
  for (const auto& algorithm : algorithms) {
    if (!is_algorithm_name(algorithm)) {
      std::string valid;
      for (const auto& known : algorithm_names()) {
        if (!valid.empty()) valid += ", ";
        valid += known;
      }
      throw util::ConfigError("pipeline: unknown algorithm '" + algorithm +
                              "' (valid values: " + valid + ")");
    }
  }
  if (csr != "plain" && csr != "compressed") {
    throw util::ConfigError("pipeline: unknown csr form '" + csr +
                            "' (valid values: plain, compressed)");
  }
  if (storage != "dir" && storage != "mem") {
    throw util::ConfigError("pipeline: unknown storage '" + storage +
                            "' (valid values: dir, mem)");
  }
  io::parse_stage_format(stage_format);  // throws listing valid values
  util::require(storage == "mem" || !work_dir.empty(),
                "pipeline: work_dir must be set for dir storage");
}

std::unique_ptr<io::StageStore> make_stage_store(
    const PipelineConfig& config) {
  if (config.storage == "dir") {
    util::require(!config.work_dir.empty(),
                  "make_stage_store: work_dir must be set for dir storage");
    return std::make_unique<io::DirStageStore>(config.work_dir);
  }
  if (config.storage == "mem") return std::make_unique<io::MemStageStore>();
  throw util::ConfigError("make_stage_store: unknown storage '" +
                          config.storage + "' (valid values: dir, mem)");
}

const io::StageCodec& make_stage_codec(const PipelineConfig& config,
                                       io::Codec flavor) {
  return io::stage_codec(io::parse_stage_format(config.stage_format), flavor);
}

std::uint64_t stage_config_fingerprint(const PipelineConfig& config) {
  // FNV-1a over a canonical rendering of every stage-determining knob.
  // Presentation knobs (storage tier, work_dir, observability) are
  // deliberately excluded: the same stages are resumable wherever they
  // physically live.
  std::string canon =
      "scale=" + std::to_string(config.scale) +
      ";edge_factor=" + std::to_string(config.edge_factor) +
      ";seed=" + std::to_string(config.seed) +
      ";generator=" + config.generator +
      ";num_files=" + std::to_string(config.num_files) +
      ";stage_format=" + config.stage_format +
      ";sort_key=" + std::to_string(static_cast<int>(config.sort_key));
  // The source determines stage bytes too. Appended only for non-default
  // sources so generator fingerprints — and therefore every previously
  // persisted checkpoint manifest — are unchanged. The K3 algorithm list
  // and csr form are deliberately excluded: they produce no stage bytes.
  if (config.source != "generator") {
    canon += ";source=" + config.source +
             ";input=" + config.input_path.string();
  }
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : canon) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

RunSize run_size(int scale, int edge_factor) {
  util::require(scale >= 1 && scale <= 40, "run_size: scale in [1, 40]");
  RunSize size;
  size.scale = scale;
  size.max_vertices = 1ULL << scale;
  size.max_edges = static_cast<std::uint64_t>(edge_factor) * size.max_vertices;
  size.memory_bytes = 16 * size.max_edges;  // 16 bytes per edge, Table II
  return size;
}

}  // namespace prpb::core
