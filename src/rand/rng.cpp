#include "rand/rng.hpp"

#include <bit>

namespace prpb::rnd {

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

double Xoshiro256::next_double() { return CounterRng::to_unit_double(next()); }

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) {
  // Rejection sampling: discard draws below the bias threshold so the
  // final modulo is exactly uniform.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t x = next();
    if (x >= threshold) return x % bound;
  }
}

}  // namespace prpb::rnd
