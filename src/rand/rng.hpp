// Deterministic random number generation for PRPB.
//
// The Graph500 generator's key property (cited by the paper) is that it "can
// be run in parallel without requiring communication between processors".
// We achieve that with a counter-based design: `CounterRng` derives the k-th
// random draw of a named stream purely from (seed, stream, counter), so any
// shard or thread can generate its slice of the edge list independently and
// the result is bit-identical to a serial run.
#pragma once

#include <cstdint>

namespace prpb::rnd {

/// SplitMix64 mixing function (Steele/Lea/Flood). Bijective on uint64.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Sequential SplitMix64 stream; used for seeding and cheap scalar draws.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman/Vigna). High-quality sequential generator used
/// where a stateful stream is fine (PageRank init vector, shuffles).
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed);

  std::uint64_t next();
  /// Uniform double in [0, 1).
  double next_double();
  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  // UniformRandomBitGenerator interface (for std::shuffle etc.).
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

 private:
  std::uint64_t s_[4];
};

/// Counter-based generator: stateless function of (seed, stream, counter).
/// Each (stream, counter) pair yields an independent 64-bit value; repeated
/// calls with the same arguments return the same value.
class CounterRng {
 public:
  explicit constexpr CounterRng(std::uint64_t seed) : seed_(seed) {}

  [[nodiscard]] constexpr std::uint64_t at(std::uint64_t stream,
                                           std::uint64_t counter) const {
    // Two rounds of splitmix over a mixed key; passes practical independence
    // checks (distinct streams/counters decorrelate in tests).
    std::uint64_t x = splitmix64(seed_ ^ (stream * 0xd1342543de82ef95ULL));
    return splitmix64(x ^ (counter * 0xa0761d6478bd642fULL));
  }

  /// Uniform double in [0, 1) for (stream, counter).
  [[nodiscard]] double uniform(std::uint64_t stream,
                               std::uint64_t counter) const {
    return to_unit_double(at(stream, counter));
  }

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Maps a uint64 to [0,1) using the top 53 bits.
  [[nodiscard]] static double to_unit_double(std::uint64_t bits) {
    return static_cast<double>(bits >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t seed_;
};

}  // namespace prpb::rnd
