// grb::Matrix and grb::Vector — GraphBLAS-style containers.
//
// Matrix wraps the CSR substrate; Vector is dense (GraphBLAS permits dense
// vector implementations, and the pipeline's r vector is dense by nature).
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"

namespace prpb::grb {

class Vector {
 public:
  Vector() = default;
  explicit Vector(std::uint64_t size, double fill = 0.0)
      : data_(size, fill) {}
  explicit Vector(std::vector<double> data) : data_(std::move(data)) {}

  [[nodiscard]] std::uint64_t size() const { return data_.size(); }
  [[nodiscard]] double operator[](std::uint64_t i) const { return data_[i]; }
  double& operator[](std::uint64_t i) { return data_[i]; }

  /// Number of entries different from `zero` (GraphBLAS nvals analogue).
  [[nodiscard]] std::uint64_t nvals(double zero = 0.0) const;

  [[nodiscard]] const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

 private:
  std::vector<double> data_;
};

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::uint64_t rows, std::uint64_t cols)
      : csr_(rows, cols) {}
  explicit Matrix(sparse::CsrMatrix csr) : csr_(std::move(csr)) {}

  /// GraphBLAS build: duplicates combined with plus (GrB_Matrix_build with
  /// GrB_PLUS as the dup operator).
  static Matrix build(const std::vector<std::uint64_t>& rows,
                      const std::vector<std::uint64_t>& cols,
                      const std::vector<double>& vals, std::uint64_t nrows,
                      std::uint64_t ncols);

  [[nodiscard]] std::uint64_t nrows() const { return csr_.rows(); }
  [[nodiscard]] std::uint64_t ncols() const { return csr_.cols(); }
  [[nodiscard]] std::uint64_t nvals() const { return csr_.nnz(); }

  [[nodiscard]] double at(std::uint64_t r, std::uint64_t c) const {
    return csr_.at(r, c);
  }

  [[nodiscard]] const sparse::CsrMatrix& csr() const { return csr_; }
  sparse::CsrMatrix& csr() { return csr_; }

 private:
  sparse::CsrMatrix csr_;
};

}  // namespace prpb::grb
