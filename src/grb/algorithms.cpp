#include "grb/algorithms.hpp"

#include <algorithm>
#include <limits>

#include "grb/ops.hpp"
#include "util/error.hpp"

namespace prpb::grb {

namespace {

/// Structure-only copy with every stored value set to `value`.
Matrix structural(const Matrix& a, double value) {
  return apply_values(a, [value](double) { return value; });
}

/// Symmetrized, de-looped structure of A (for undirected algorithms).
Matrix symmetrize(const Matrix& a) {
  util::require(a.nrows() == a.ncols(), "symmetrize: matrix must be square");
  const auto& csr = a.csr();
  std::vector<std::uint64_t> rows;
  std::vector<std::uint64_t> cols;
  for (std::uint64_t r = 0; r < csr.rows(); ++r) {
    for (std::uint64_t k = csr.row_ptr()[r]; k < csr.row_ptr()[r + 1]; ++k) {
      const std::uint64_t c = csr.col_idx()[k];
      if (r == c) continue;  // drop self loops
      rows.push_back(r);
      cols.push_back(c);
      rows.push_back(c);
      cols.push_back(r);
    }
  }
  const std::vector<double> ones(rows.size(), 1.0);
  Matrix sym = Matrix::build(rows, cols, ones, a.nrows(), a.ncols());
  // duplicate accumulation can give 2s; collapse back to structure
  return structural(sym, 1.0);
}

}  // namespace

std::vector<std::int64_t> bfs_levels(const Matrix& a, std::uint64_t source) {
  util::require(a.nrows() == a.ncols(), "bfs: matrix must be square");
  util::require(source < a.nrows(), "bfs: source out of range");
  const Matrix structure = structural(a, 1.0);
  const std::uint64_t n = a.nrows();

  std::vector<std::int64_t> levels(n, -1);
  Vector frontier(n, 0.0);
  Vector visited(n, 0.0);
  frontier[source] = 1.0;
  visited[source] = 1.0;
  levels[source] = 0;

  for (std::int64_t level = 1; static_cast<std::uint64_t>(level) <= n;
       ++level) {
    // next = (frontier or-and A) masked to unvisited vertices
    frontier = vxm_masked<OrAnd>(frontier, structure, visited,
                                 /*complement=*/true);
    bool any = false;
    for (std::uint64_t v = 0; v < n; ++v) {
      if (frontier[v] != 0.0) {
        levels[v] = level;
        visited[v] = 1.0;
        any = true;
      }
    }
    if (!any) break;
  }
  return levels;
}

std::vector<std::uint64_t> frontier_sizes(const Matrix& a,
                                          std::uint64_t source) {
  const auto levels = bfs_levels(a, source);
  std::int64_t max_level = 0;
  for (const auto l : levels) max_level = std::max(max_level, l);
  std::vector<std::uint64_t> sizes(static_cast<std::size_t>(max_level) + 1,
                                   0);
  for (const auto l : levels) {
    if (l >= 0) ++sizes[static_cast<std::size_t>(l)];
  }
  return sizes;
}

std::vector<double> sssp(const Matrix& a, std::uint64_t source) {
  util::require(a.nrows() == a.ncols(), "sssp: matrix must be square");
  util::require(source < a.nrows(), "sssp: source out of range");
  const std::uint64_t n = a.nrows();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  Vector dist(n, kInf);
  dist[source] = 0.0;
  for (std::uint64_t round = 0; round <= n; ++round) {
    // relax one hop: candidate[j] = min_i dist[i] + A(i, j)
    Vector candidate = vxm<MinPlus>(dist, a);
    bool changed = false;
    for (std::uint64_t v = 0; v < n; ++v) {
      if (candidate[v] < dist[v]) {
        dist[v] = candidate[v];
        changed = true;
      }
    }
    if (!changed) return dist.data();
    util::ensure(round < n,
                 "sssp: no fixed point after |V| rounds (negative cycle)");
  }
  return dist.data();
}

std::uint64_t triangle_count(const Matrix& a) {
  const Matrix sym = symmetrize(a);
  // Split into strictly-lower L and strictly-upper U; triangles =
  // sum(entries of (L · U) that coincide with stored entries of L).
  // (Sandia / GraphChallenge formulation.)
  const Matrix lower = select(
      sym, [](std::uint64_t r, std::uint64_t c, double) { return c < r; });
  const Matrix upper = select(
      sym, [](std::uint64_t r, std::uint64_t c, double) { return c > r; });
  const Matrix paths = mxm<PlusTimes>(lower, upper);

  // Mask to L's structure with eWiseMult (L's values are all 1), then
  // reduce all surviving path counts.
  const Matrix masked = ewise_mult(paths, lower);
  double count = 0.0;
  for (const double v : masked.csr().values()) count += v;
  return static_cast<std::uint64_t>(count);
}

std::vector<std::uint64_t> connected_components(const Matrix& a) {
  util::require(a.nrows() == a.ncols(), "cc: matrix must be square");
  const Matrix sym = symmetrize(a);
  const std::uint64_t n = a.nrows();

  // Min-label propagation: label[v] <- min(label[v], min over in-neighbors).
  // Encode labels directly; min-plus over a 0-weighted structure gives the
  // neighborhood minimum.
  const Matrix zero_weights = apply_values(sym, [](double) { return 0.0; });
  Vector labels(n);
  for (std::uint64_t v = 0; v < n; ++v)
    labels[v] = static_cast<double>(v);

  for (std::uint64_t round = 0; round <= n; ++round) {
    Vector neighbor_min = vxm<MinPlus>(labels, zero_weights);
    bool changed = false;
    for (std::uint64_t v = 0; v < n; ++v) {
      if (neighbor_min[v] < labels[v]) {
        labels[v] = neighbor_min[v];
        changed = true;
      }
    }
    if (!changed) break;
  }
  std::vector<std::uint64_t> out(n);
  for (std::uint64_t v = 0; v < n; ++v)
    out[v] = static_cast<std::uint64_t>(labels[v]);
  return out;
}

}  // namespace prpb::grb
