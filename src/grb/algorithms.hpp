// Graph algorithms expressed in mini-GraphBLAS operations — the library
// surface that justifies the paper's "implementations using the GraphBLAS
// standard would enable comparison of the GraphBLAS capabilities with other
// technologies". Each algorithm is a straight transcription of the
// canonical GraphBLAS formulation:
//   BFS      — or-and vxm with a complemented visited mask
//   SSSP     — min-plus vxm relaxation to fixed point (Bellman-Ford)
//   triangles— plus-times mxm against the adjacency structure
//   CC       — label propagation via min-select vxm to fixed point
#pragma once

#include <cstdint>
#include <vector>

#include "grb/matrix.hpp"

namespace prpb::grb {

/// BFS levels from `source` over the directed graph A (structure only;
/// values ignored). Returns level[v] = hop distance, or -1 if unreachable.
/// level[source] == 0.
std::vector<std::int64_t> bfs_levels(const Matrix& a, std::uint64_t source);

/// Single-source shortest paths over edge weights (Bellman-Ford by min-plus
/// vxm). Returns +inf for unreachable vertices. Throws InvariantError when a
/// negative cycle prevents convergence within |V| rounds.
std::vector<double> sssp(const Matrix& a, std::uint64_t source);

/// Number of triangles in the *undirected* graph whose adjacency structure
/// is A (the matrix is symmetrized and de-looped internally).
/// Uses trace(L·U ∘ A)/1 on the lower/upper split — the classic
/// GraphBLAS triangle-count formulation.
std::uint64_t triangle_count(const Matrix& a);

/// Weakly connected components via min-label propagation. Returns the
/// component label (smallest vertex id in the component) per vertex.
std::vector<std::uint64_t> connected_components(const Matrix& a);

/// Out-degree histogram support: the k-hop reachability frontier sizes from
/// `source`, i.e. the number of newly reached vertices per BFS level.
std::vector<std::uint64_t> frontier_sizes(const Matrix& a,
                                          std::uint64_t source);

}  // namespace prpb::grb
