// Semiring algebra for the mini-GraphBLAS layer.
//
// The paper: "The linear algebraic nature of PageRank makes it well suited to
// being implemented using the GraphBLAS standard." This header defines the
// monoids and semirings the grb operations are parameterized over. Only the
// plus-times semiring is needed for the pipeline itself; min-plus and or-and
// are provided because any credible GraphBLAS subset supports them (and the
// test suite exercises BFS/shortest-path style reductions with them).
#pragma once

#include <algorithm>
#include <limits>

namespace prpb::grb {

// ---- binary operators -------------------------------------------------------

struct Plus {
  static constexpr double identity = 0.0;
  static constexpr double apply(double a, double b) { return a + b; }
};

struct Times {
  static constexpr double identity = 1.0;
  static constexpr double apply(double a, double b) { return a * b; }
};

struct Min {
  static constexpr double identity = std::numeric_limits<double>::infinity();
  static constexpr double apply(double a, double b) { return std::min(a, b); }
};

struct Max {
  static constexpr double identity =
      -std::numeric_limits<double>::infinity();
  static constexpr double apply(double a, double b) { return std::max(a, b); }
};

/// Logical OR over {0, 1}-valued doubles.
struct LogicalOr {
  static constexpr double identity = 0.0;
  static constexpr double apply(double a, double b) {
    return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
  }
};

/// Logical AND over {0, 1}-valued doubles.
struct LogicalAnd {
  static constexpr double identity = 1.0;
  static constexpr double apply(double a, double b) {
    return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
  }
};

// ---- semirings --------------------------------------------------------------

/// A semiring pairs an additive monoid with a multiplicative operator.
/// `AddMonoid::identity` is the implied value of structural zeros.
template <typename AddMonoid, typename MulOp>
struct Semiring {
  using Add = AddMonoid;
  using Mul = MulOp;
};

using PlusTimes = Semiring<Plus, Times>;   ///< classic linear algebra
using MinPlus = Semiring<Min, Plus>;       ///< shortest paths
using MaxTimes = Semiring<Max, Times>;     ///< max-probability paths
using OrAnd = Semiring<LogicalOr, LogicalAnd>;  ///< reachability / BFS

}  // namespace prpb::grb
