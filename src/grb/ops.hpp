// GraphBLAS-style operations over grb::Matrix / grb::Vector.
//
// Semiring-templated kernels: vxm, mxv, mxm (Gustavson), reduce (matrix →
// vector along either axis, vector → scalar), apply (unary function on
// values), select (keep entries satisfying a predicate on (row, col, val)),
// and diag (diagonal matrix from a vector). These are the building blocks
// the `graphblas` pipeline backend expresses kernels 2–3 with.
#pragma once

#include <cstdint>
#include <functional>
#include <type_traits>

#include "grb/matrix.hpp"
#include "grb/semiring.hpp"
#include "util/error.hpp"

namespace prpb::grb {

/// w = u ·ₛ A (row vector times matrix under semiring S).
template <typename S = PlusTimes>
Vector vxm(const Vector& u, const Matrix& a) {
  util::require(u.size() == a.nrows(), "vxm: dimension mismatch");
  Vector w(a.ncols(), S::Add::identity);
  const auto& csr = a.csr();
  for (std::uint64_t r = 0; r < csr.rows(); ++r) {
    const double ur = u[r];
    if (ur == S::Add::identity && std::is_same_v<S, PlusTimes>) continue;
    for (std::uint64_t k = csr.row_ptr()[r]; k < csr.row_ptr()[r + 1]; ++k) {
      const std::uint64_t c = csr.col_idx()[k];
      w[c] = S::Add::apply(w[c], S::Mul::apply(ur, csr.values()[k]));
    }
  }
  return w;
}

/// w = A ·ₛ u (matrix times column vector under semiring S).
template <typename S = PlusTimes>
Vector mxv(const Matrix& a, const Vector& u) {
  util::require(u.size() == a.ncols(), "mxv: dimension mismatch");
  Vector w(a.nrows(), S::Add::identity);
  const auto& csr = a.csr();
  for (std::uint64_t r = 0; r < csr.rows(); ++r) {
    double acc = S::Add::identity;
    for (std::uint64_t k = csr.row_ptr()[r]; k < csr.row_ptr()[r + 1]; ++k) {
      acc = S::Add::apply(
          acc, S::Mul::apply(csr.values()[k], u[csr.col_idx()[k]]));
    }
    w[r] = acc;
  }
  return w;
}

/// C = A ·ₛ B (Gustavson row-by-row sparse matrix multiply).
template <typename S = PlusTimes>
Matrix mxm(const Matrix& a, const Matrix& b);

/// Column reduction: w[c] = ⊕ᵣ A(r, c) — Matlab's sum(A, 1) under Plus.
template <typename Monoid = Plus>
Vector reduce_columns(const Matrix& a) {
  Vector w(a.ncols(), Monoid::identity);
  const auto& csr = a.csr();
  for (std::uint64_t k = 0; k < csr.nnz(); ++k) {
    const std::uint64_t c = csr.col_idx()[k];
    w[c] = Monoid::apply(w[c], csr.values()[k]);
  }
  return w;
}

/// Row reduction: w[r] = ⊕꜀ A(r, c) — Matlab's sum(A, 2) under Plus.
template <typename Monoid = Plus>
Vector reduce_rows(const Matrix& a) {
  Vector w(a.nrows(), Monoid::identity);
  const auto& csr = a.csr();
  for (std::uint64_t r = 0; r < csr.rows(); ++r) {
    double acc = Monoid::identity;
    for (std::uint64_t k = csr.row_ptr()[r]; k < csr.row_ptr()[r + 1]; ++k)
      acc = Monoid::apply(acc, csr.values()[k]);
    w[r] = acc;
  }
  return w;
}

/// Scalar reduction of a vector.
template <typename Monoid = Plus>
double reduce(const Vector& u) {
  double acc = Monoid::identity;
  for (std::uint64_t i = 0; i < u.size(); ++i) acc = Monoid::apply(acc, u[i]);
  return acc;
}

/// Element-wise unary apply on a vector (dense; applied to every entry).
Vector apply(const Vector& u, const std::function<double(double)>& fn);

/// Unary apply on stored matrix entries only (structural zeros untouched).
Matrix apply_values(const Matrix& a, const std::function<double(double)>& fn);

/// Keeps stored entries where pred(row, col, value) is true.
Matrix select(
    const Matrix& a,
    const std::function<bool(std::uint64_t, std::uint64_t, double)>& pred);

/// Diagonal matrix with d on the diagonal (zero entries are kept structural
/// zeros, matching GrB_Matrix_diag behaviour for implicit zeros).
Matrix diag(const Vector& d);

/// eWiseAdd / eWiseMult on dense vectors.
Vector ewise_add(const Vector& u, const Vector& v);
Vector ewise_mult(const Vector& u, const Vector& v);

/// Masked vxm: entries of the result where mask[i] != 0 are suppressed when
/// `complement` is false, or kept only there when `complement` is true is
/// inverted — i.e. GraphBLAS semantics: with a (structural) mask the output
/// is computed only where the mask is *set*; pass complement=true for
/// GrB_COMP (computed only where the mask is *unset*, the BFS idiom).
/// Unset positions hold the semiring's additive identity.
template <typename S = PlusTimes>
Vector vxm_masked(const Vector& u, const Matrix& a, const Vector& mask,
                  bool complement = false) {
  util::require(mask.size() == a.ncols(), "vxm_masked: mask size mismatch");
  Vector w = vxm<S>(u, a);
  for (std::uint64_t i = 0; i < w.size(); ++i) {
    const bool set = mask[i] != 0.0;
    if (set == complement) w[i] = S::Add::identity;
  }
  return w;
}

/// Matrix eWiseAdd: union of structures; overlapping entries combined with
/// `add` (GraphBLAS set-union semantics — absent entries contribute
/// nothing, NOT the identity-for-both behaviour of dense addition).
Matrix ewise_add(const Matrix& a, const Matrix& b,
                 const std::function<double(double, double)>& add);
/// Plus convenience.
Matrix ewise_add(const Matrix& a, const Matrix& b);

/// Matrix eWiseMult: intersection of structures; entries present in both
/// combined with `mul`.
Matrix ewise_mult(const Matrix& a, const Matrix& b,
                  const std::function<double(double, double)>& mul);
/// Times convenience.
Matrix ewise_mult(const Matrix& a, const Matrix& b);

/// assign: w[i] = value wherever mask[i] != 0 (GrB_assign with a mask).
void assign_masked(Vector& w, const Vector& mask, double value);

/// extract: the subvector w[indices] (GrB_extract).
Vector extract(const Vector& u, const std::vector<std::uint64_t>& indices);

/// Transpose.
Matrix transpose(const Matrix& a);

// ---- template definitions ---------------------------------------------------

template <typename S>
Matrix mxm(const Matrix& a, const Matrix& b) {
  util::require(a.ncols() == b.nrows(), "mxm: inner dimension mismatch");
  const auto& ca = a.csr();
  const auto& cb = b.csr();

  std::vector<std::uint64_t> out_rows;
  std::vector<std::uint64_t> out_cols;
  std::vector<double> out_vals;

  // Gustavson: accumulate row r of C in a sparse accumulator.
  std::vector<double> acc(b.ncols(), S::Add::identity);
  std::vector<std::uint64_t> touched;
  std::vector<bool> seen(b.ncols(), false);
  for (std::uint64_t r = 0; r < ca.rows(); ++r) {
    touched.clear();
    for (std::uint64_t ka = ca.row_ptr()[r]; ka < ca.row_ptr()[r + 1]; ++ka) {
      const std::uint64_t mid = ca.col_idx()[ka];
      const double va = ca.values()[ka];
      for (std::uint64_t kb = cb.row_ptr()[mid]; kb < cb.row_ptr()[mid + 1];
           ++kb) {
        const std::uint64_t c = cb.col_idx()[kb];
        if (!seen[c]) {
          seen[c] = true;
          touched.push_back(c);
          acc[c] = S::Add::identity;
        }
        acc[c] = S::Add::apply(acc[c], S::Mul::apply(va, cb.values()[kb]));
      }
    }
    for (const std::uint64_t c : touched) {
      out_rows.push_back(r);
      out_cols.push_back(c);
      out_vals.push_back(acc[c]);
      seen[c] = false;
    }
  }
  return Matrix::build(out_rows, out_cols, out_vals, a.nrows(), b.ncols());
}

}  // namespace prpb::grb
