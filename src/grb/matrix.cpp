#include "grb/matrix.hpp"

namespace prpb::grb {

std::uint64_t Vector::nvals(double zero) const {
  std::uint64_t count = 0;
  for (const double x : data_) {
    if (x != zero) ++count;
  }
  return count;
}

Matrix Matrix::build(const std::vector<std::uint64_t>& rows,
                     const std::vector<std::uint64_t>& cols,
                     const std::vector<double>& vals, std::uint64_t nrows,
                     std::uint64_t ncols) {
  return Matrix(sparse::CsrMatrix::from_triplets(rows, cols, vals, nrows,
                                                 ncols));
}

}  // namespace prpb::grb
