#include "grb/ops.hpp"

namespace prpb::grb {

Vector apply(const Vector& u, const std::function<double(double)>& fn) {
  Vector w(u.size());
  for (std::uint64_t i = 0; i < u.size(); ++i) w[i] = fn(u[i]);
  return w;
}

Matrix apply_values(const Matrix& a, const std::function<double(double)>& fn) {
  Matrix out(a);
  for (auto& v : out.csr().mutable_values()) v = fn(v);
  return out;
}

Matrix select(
    const Matrix& a,
    const std::function<bool(std::uint64_t, std::uint64_t, double)>& pred) {
  const auto& csr = a.csr();
  std::vector<std::uint64_t> rows;
  std::vector<std::uint64_t> cols;
  std::vector<double> vals;
  for (std::uint64_t r = 0; r < csr.rows(); ++r) {
    for (std::uint64_t k = csr.row_ptr()[r]; k < csr.row_ptr()[r + 1]; ++k) {
      const std::uint64_t c = csr.col_idx()[k];
      const double v = csr.values()[k];
      if (pred(r, c, v)) {
        rows.push_back(r);
        cols.push_back(c);
        vals.push_back(v);
      }
    }
  }
  return Matrix::build(rows, cols, vals, a.nrows(), a.ncols());
}

Matrix diag(const Vector& d) {
  std::vector<std::uint64_t> rows;
  std::vector<std::uint64_t> cols;
  std::vector<double> vals;
  for (std::uint64_t i = 0; i < d.size(); ++i) {
    if (d[i] != 0.0) {
      rows.push_back(i);
      cols.push_back(i);
      vals.push_back(d[i]);
    }
  }
  return Matrix::build(rows, cols, vals, d.size(), d.size());
}

Vector ewise_add(const Vector& u, const Vector& v) {
  util::require(u.size() == v.size(), "ewise_add: size mismatch");
  Vector w(u.size());
  for (std::uint64_t i = 0; i < u.size(); ++i) w[i] = u[i] + v[i];
  return w;
}

Vector ewise_mult(const Vector& u, const Vector& v) {
  util::require(u.size() == v.size(), "ewise_mult: size mismatch");
  Vector w(u.size());
  for (std::uint64_t i = 0; i < u.size(); ++i) w[i] = u[i] * v[i];
  return w;
}

Matrix transpose(const Matrix& a) { return Matrix(a.csr().transpose()); }

namespace {
/// Walks two sorted CSR rows in lockstep, emitting union or intersection.
template <bool kUnion>
Matrix ewise_impl(const Matrix& a, const Matrix& b,
                  const std::function<double(double, double)>& combine) {
  util::require(a.nrows() == b.nrows() && a.ncols() == b.ncols(),
                "ewise: shape mismatch");
  const auto& ca = a.csr();
  const auto& cb = b.csr();
  std::vector<std::uint64_t> rows;
  std::vector<std::uint64_t> cols;
  std::vector<double> vals;
  for (std::uint64_t r = 0; r < ca.rows(); ++r) {
    std::uint64_t ka = ca.row_ptr()[r];
    std::uint64_t kb = cb.row_ptr()[r];
    const std::uint64_t ea = ca.row_ptr()[r + 1];
    const std::uint64_t eb = cb.row_ptr()[r + 1];
    while (ka < ea || kb < eb) {
      const std::uint64_t col_a =
          ka < ea ? ca.col_idx()[ka] : ~0ULL;
      const std::uint64_t col_b =
          kb < eb ? cb.col_idx()[kb] : ~0ULL;
      if (col_a == col_b) {
        rows.push_back(r);
        cols.push_back(col_a);
        vals.push_back(combine(ca.values()[ka], cb.values()[kb]));
        ++ka;
        ++kb;
      } else if (col_a < col_b) {
        if constexpr (kUnion) {
          rows.push_back(r);
          cols.push_back(col_a);
          vals.push_back(ca.values()[ka]);
        }
        ++ka;
      } else {
        if constexpr (kUnion) {
          rows.push_back(r);
          cols.push_back(col_b);
          vals.push_back(cb.values()[kb]);
        }
        ++kb;
      }
    }
  }
  return Matrix::build(rows, cols, vals, a.nrows(), a.ncols());
}
}  // namespace

Matrix ewise_add(const Matrix& a, const Matrix& b,
                 const std::function<double(double, double)>& add) {
  return ewise_impl<true>(a, b, add);
}

Matrix ewise_add(const Matrix& a, const Matrix& b) {
  return ewise_impl<true>(a, b, [](double x, double y) { return x + y; });
}

Matrix ewise_mult(const Matrix& a, const Matrix& b,
                  const std::function<double(double, double)>& mul) {
  return ewise_impl<false>(a, b, mul);
}

Matrix ewise_mult(const Matrix& a, const Matrix& b) {
  return ewise_impl<false>(a, b, [](double x, double y) { return x * y; });
}

void assign_masked(Vector& w, const Vector& mask, double value) {
  util::require(w.size() == mask.size(), "assign_masked: size mismatch");
  for (std::uint64_t i = 0; i < w.size(); ++i) {
    if (mask[i] != 0.0) w[i] = value;
  }
}

Vector extract(const Vector& u, const std::vector<std::uint64_t>& indices) {
  Vector w(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    util::require(indices[i] < u.size(), "extract: index out of range");
    w[i] = u[indices[i]];
  }
  return w;
}

}  // namespace prpb::grb
