#include "model/hardware.hpp"

#include <cstring>
#include <map>
#include <mutex>
#include <vector>

#include "gen/kronecker.hpp"
#include "io/edge_files.hpp"
#include "io/file_stream.hpp"
#include "io/tsv.hpp"
#include "util/fs.hpp"
#include "util/timer.hpp"

namespace prpb::model {

namespace {

double probe_memory_bandwidth(std::uint64_t bytes) {
  std::vector<char> src(bytes, 'x');
  std::vector<char> dst(bytes);
  // Warm both buffers, then time a round of copies.
  std::memcpy(dst.data(), src.data(), bytes);
  util::Stopwatch watch;
  constexpr int kRounds = 4;
  for (int i = 0; i < kRounds; ++i) {
    std::memcpy(dst.data(), src.data(), bytes);
    src[0] = static_cast<char>(i);  // defeat dead-copy elimination
  }
  const double seconds = watch.seconds();
  return seconds > 0 ? static_cast<double>(2 * bytes * kRounds) / seconds
                     : 0.0;
}

}  // namespace

double probe_triad_bandwidth(std::uint64_t bytes) {
  const std::size_t n =
      static_cast<std::size_t>(bytes / (3 * sizeof(double)));
  if (n == 0) return 0.0;
  std::vector<double> a(n, 0.0);
  std::vector<double> b(n, 1.0);
  std::vector<double> c(n, 2.0);
  double scalar = 3.0;
  volatile double sink = 0.0;
  // Warm pass, then timed rounds; the scalar changes per round and a[0]
  // is consumed so the loop cannot be elided.
  for (std::size_t i = 0; i < n; ++i) a[i] = b[i] + scalar * c[i];
  util::Stopwatch watch;
  constexpr int kRounds = 4;
  for (int round = 0; round < kRounds; ++round) {
    for (std::size_t i = 0; i < n; ++i) a[i] = b[i] + scalar * c[i];
    sink = a[0];
    scalar += 1e-9;
  }
  (void)sink;
  const double seconds = watch.seconds();
  const double moved = static_cast<double>(3 * sizeof(double)) *
                       static_cast<double>(n) * kRounds;
  return seconds > 0 ? moved / seconds : 0.0;
}

namespace {

gen::EdgeList probe_edges(std::uint64_t count) {
  gen::KroneckerParams params;
  params.scale = 16;
  params.edge_factor = 16;
  gen::KroneckerGenerator generator(params);
  gen::EdgeList edges;
  generator.generate_range(0, std::min(count, generator.num_edges()), edges);
  return edges;
}

void probe_codec(const gen::EdgeList& edges, io::Codec codec,
                 double& format_s, double& parse_s) {
  std::string text;
  {
    util::Stopwatch watch;
    for (const auto& edge : edges) io::append_edge(text, edge, codec);
    format_s = watch.seconds() / static_cast<double>(edges.size());
  }
  {
    gen::EdgeList parsed;
    parsed.reserve(edges.size());
    util::Stopwatch watch;
    io::parse_edges(text, parsed, codec);
    parse_s = watch.seconds() / static_cast<double>(edges.size());
  }
}

void probe_io(std::uint64_t bytes, double& write_bps, double& read_bps) {
  util::TempDir dir("prpb-model");
  const auto path = dir.sub("probe.bin");
  std::string block(1 << 20, 'y');
  {
    util::Stopwatch watch;
    io::FileWriter writer(path);
    for (std::uint64_t written = 0; written < bytes;
         written += block.size()) {
      writer.write(block);
    }
    writer.close();
    const double seconds = watch.seconds();
    write_bps = seconds > 0 ? static_cast<double>(bytes) / seconds : 0.0;
  }
  {
    util::Stopwatch watch;
    io::FileReader reader(path);
    std::uint64_t total = 0;
    for (;;) {
      const auto chunk = reader.read_chunk();
      if (chunk.empty()) break;
      total += chunk.size();
    }
    const double seconds = watch.seconds();
    read_bps = seconds > 0 ? static_cast<double>(total) / seconds : 0.0;
  }
}

double probe_flops(std::uint64_t count) {
  volatile double sink = 0.0;
  double a = 1.000000001;
  double acc = 0.5;
  util::Stopwatch watch;
  for (std::uint64_t i = 0; i < count; ++i) {
    acc = acc * a + 1e-9;  // one multiply-add per iteration
  }
  sink = acc;
  (void)sink;
  const double seconds = watch.seconds();
  return seconds > 0 ? static_cast<double>(2 * count) / seconds : 0.0;
}

}  // namespace

double cached_triad_bandwidth(std::uint64_t bytes) {
  static std::mutex mutex;
  static std::map<std::uint64_t, double> cache;
  std::lock_guard<std::mutex> lock(mutex);
  const auto it = cache.find(bytes);
  if (it != cache.end()) return it->second;
  const double bps = probe_triad_bandwidth(bytes);
  cache.emplace(bytes, bps);
  return bps;
}

HardwareModel calibrate(const CalibrationOptions& options) {
  HardwareModel model;
  model.memory_bandwidth_bps = probe_memory_bandwidth(options.memory_bytes);
  model.triad_bandwidth_bps = cached_triad_bandwidth(options.memory_bytes);
  probe_io(options.io_bytes, model.io_write_bps, model.io_read_bps);
  const gen::EdgeList edges = probe_edges(options.codec_edges);
  probe_codec(edges, io::Codec::kFast, model.fast_format_s,
              model.fast_parse_s);
  probe_codec(edges, io::Codec::kGeneric, model.generic_format_s,
              model.generic_parse_s);
  model.flops = probe_flops(options.flop_count);
  return model;
}

HardwareModel paper_platform_model() {
  HardwareModel model;
  // Xeon E5-2650 (Sandy Bridge, 2 GHz): one core of a 4-channel DDR3 node,
  // Lustre over InfiniBand. Order-of-magnitude figures only.
  model.memory_bandwidth_bps = 8e9;
  model.triad_bandwidth_bps = 10e9;
  model.io_write_bps = 500e6;
  model.io_read_bps = 800e6;
  model.flops = 4e9;
  model.fast_format_s = 20e-9;
  model.fast_parse_s = 25e-9;
  model.generic_format_s = 400e-9;
  model.generic_parse_s = 600e-9;
  return model;
}

}  // namespace prpb::model
