// Simple hardware model (paper §V: "The computations are also simple enough
// that performance predictions can be made based on simple hardware
// models.").
//
// The model reduces a machine to a handful of measured rates; kernel
// predictions (predict.hpp) are bytes-moved / rate sums over each kernel's
// data movement, plus per-edge software costs that differ by backend stack.
#pragma once

#include <cstdint>

namespace prpb::model {

struct HardwareModel {
  double memory_bandwidth_bps = 0;   ///< streaming copy bytes/second
  /// STREAM-triad bandwidth (a[i] = b[i] + s·c[i], 3 · 8 bytes/element):
  /// the peak the counter-derived achieved-GB/s numbers are compared to.
  double triad_bandwidth_bps = 0;
  double io_write_bps = 0;           ///< file write bytes/second
  double io_read_bps = 0;            ///< file read bytes/second
  double flops = 0;                  ///< double-precision multiply-add /s
  double fast_format_s = 0;          ///< seconds per edge, fast TSV format
  double fast_parse_s = 0;           ///< seconds per edge, fast TSV parse
  double generic_format_s = 0;       ///< seconds per edge, generic format
  double generic_parse_s = 0;        ///< seconds per edge, generic parse
};

struct CalibrationOptions {
  std::uint64_t memory_bytes = 64ULL << 20;  ///< buffer for bandwidth probe
  std::uint64_t io_bytes = 16ULL << 20;      ///< file size for I/O probes
  std::uint64_t codec_edges = 1 << 18;       ///< edges for codec probes
  std::uint64_t flop_count = 1ULL << 26;     ///< fused multiply-adds to time
};

/// Measures the local machine with short micro-probes (sub-second each).
HardwareModel calibrate(const CalibrationOptions& options = {});

/// The triad probe alone (bytes sizes the three buffers together) — the
/// bench harness calls this once per process to normalize achieved GB/s.
double probe_triad_bandwidth(std::uint64_t bytes = 32ULL << 20);

/// Memoized probe_triad_bandwidth: the first call per buffer size runs the
/// probe (tens of ms at the default 32 MiB), later calls return the cached
/// figure. Used by calibrate() and the bench harness so repeated
/// calibrations — per-cell sweeps, back-to-back model runs — pay for the
/// probe once per process. Thread-safe.
double cached_triad_bandwidth(std::uint64_t bytes = 32ULL << 20);

/// A representative model of the paper's platform (Xeon E5-2650, Lustre),
/// for making predictions without running probes.
HardwareModel paper_platform_model();

}  // namespace prpb::model
