#include "model/predict.hpp"

#include <cmath>

#include "util/error.hpp"

namespace prpb::model {

namespace {
struct Terms {
  double io = 0;
  double compute = 0;
  double software = 0;
};

KernelPrediction finish(const Terms& terms, double edges) {
  KernelPrediction p;
  p.seconds = terms.io + terms.compute + terms.software;
  p.edges_per_second = p.seconds > 0 ? edges / p.seconds : 0;
  if (p.seconds > 0) {
    p.io_fraction = terms.io / p.seconds;
    p.compute_fraction = terms.compute / p.seconds;
    p.software_fraction = terms.software / p.seconds;
  }
  return p;
}

double edges_of(int scale, int edge_factor) {
  return static_cast<double>(edge_factor) *
         static_cast<double>(1ULL << scale);
}
}  // namespace

double tsv_edge_bytes(int scale) {
  // Vertex labels are uniform-ish over [0, 2^scale): average decimal digit
  // count approximates log10(2^scale) (most draws land in the top decade).
  const double digits =
      std::max(1.0, std::log10(std::pow(2.0, scale)));
  return 2.0 * digits + 2.0;  // two labels + tab + newline
}

BackendTraits backend_traits(const std::string& backend,
                             const HardwareModel& hw) {
  BackendTraits t;
  t.name = backend;
  if (backend == "native" || backend == "parallel" ||
      backend == "graphblas") {
    t.format_s = hw.fast_format_s;
    t.parse_s = hw.fast_parse_s;
    t.dispatch_s = 0;
    t.sort_byte_passes = 8;  // radix passes over 16-byte records
    return t;
  }
  if (backend == "arraylang") {
    t.format_s = hw.generic_format_s;
    t.parse_s = hw.generic_parse_s;
    // boxing + permutation gathers + double<->index conversions
    t.dispatch_s = 8e-9;
    t.sort_byte_passes = 12;  // comparison sort through an index permutation
    return t;
  }
  if (backend == "dataframe") {
    t.format_s = hw.generic_format_s;
    t.parse_s = hw.generic_parse_s;
    t.dispatch_s = 4e-9;  // columnar but type-dispatched per operation
    t.sort_byte_passes = 12;
    return t;
  }
  throw util::ConfigError("backend_traits: unknown backend '" + backend +
                          "'");
}

KernelPrediction predict_kernel0(const HardwareModel& hw,
                                 const BackendTraits& traits, int scale,
                                 int edge_factor) {
  const double m = edges_of(scale, edge_factor);
  const double bytes = m * tsv_edge_bytes(scale);
  Terms t;
  t.io = bytes / hw.io_write_bps;
  // generation: ~2*scale counter-RNG draws, each a few ns of ALU work
  t.compute = m * static_cast<double>(scale) * 8.0 / hw.flops;
  t.software = m * (traits.format_s + traits.dispatch_s);
  return finish(t, m);
}

KernelPrediction predict_kernel1(const HardwareModel& hw,
                                 const BackendTraits& traits, int scale,
                                 int edge_factor) {
  const double m = edges_of(scale, edge_factor);
  const double text_bytes = m * tsv_edge_bytes(scale);
  const double record_bytes = m * 16.0;
  Terms t;
  t.io = text_bytes / hw.io_read_bps + text_bytes / hw.io_write_bps;
  t.compute = record_bytes * traits.sort_byte_passes / 8.0 * 2.0 /
              hw.memory_bandwidth_bps;
  t.software = m * (traits.parse_s + traits.format_s + traits.dispatch_s);
  return finish(t, m);
}

KernelPrediction predict_kernel2(const HardwareModel& hw,
                                 const BackendTraits& traits, int scale,
                                 int edge_factor) {
  const double m = edges_of(scale, edge_factor);
  const double text_bytes = m * tsv_edge_bytes(scale);
  const double record_bytes = m * 16.0;
  Terms t;
  t.io = text_bytes / hw.io_read_bps;
  // build (bucket + sort + dedup) ~ 4 record passes; degree sums ~ 1 pass
  t.compute = record_bytes * 5.0 * 2.0 / hw.memory_bandwidth_bps;
  t.software = m * (traits.parse_s + traits.dispatch_s);
  return finish(t, m);
}

KernelPrediction predict_kernel3(const HardwareModel& hw,
                                 const BackendTraits& traits, int scale,
                                 int edge_factor, int iterations) {
  const double m = edges_of(scale, edge_factor);
  Terms t;
  // Per iteration: one SpMV touching ~20 bytes per stored edge (index +
  // value + scattered y access) and 2 flops per stored edge. All stacks
  // funnel into the same vectorized SpMV — hence the paper's small
  // kernel-3 dispersion — so dispatch applies per *iteration*, not per edge.
  const double iters = static_cast<double>(iterations);
  t.compute = iters * (m * 20.0 / hw.memory_bandwidth_bps +
                       m * 2.0 / hw.flops);
  t.software = iters * 64.0 * traits.dispatch_s * 1e3;
  return finish(t, iters * m);
}

PipelinePrediction predict_pipeline(const HardwareModel& hw,
                                    const BackendTraits& traits, int scale,
                                    int edge_factor, int iterations) {
  PipelinePrediction p;
  p.k0 = predict_kernel0(hw, traits, scale, edge_factor);
  p.k1 = predict_kernel1(hw, traits, scale, edge_factor);
  p.k2 = predict_kernel2(hw, traits, scale, edge_factor);
  p.k3 = predict_kernel3(hw, traits, scale, edge_factor, iterations);
  return p;
}

}  // namespace prpb::model
