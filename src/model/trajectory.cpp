#include "model/trajectory.hpp"

#include <cmath>
#include <unordered_map>

#include "util/error.hpp"
#include "util/json.hpp"

namespace prpb::model {

namespace {

double number_or(const util::JsonValue& cell, const char* key,
                 double fallback) {
  const util::JsonValue* value = cell.find(key);
  return value != nullptr && value->is_number() ? value->number() : fallback;
}

std::uint64_t uint_or(const util::JsonValue& cell, const char* key,
                      std::uint64_t fallback) {
  const util::JsonValue* value = cell.find(key);
  if (value == nullptr || !value->is_number()) return fallback;
  return static_cast<std::uint64_t>(value->number());
}

std::string string_or(const util::JsonValue& cell, const char* key,
                      const std::string& fallback) {
  const util::JsonValue* value = cell.find(key);
  return value != nullptr && value->is_string() ? value->string() : fallback;
}

void write_key_fields(util::JsonWriter& json, const BenchCell& cell) {
  if (cell.kernel >= 0) {
    json.field("kernel", static_cast<std::int64_t>(cell.kernel));
  }
  json.field("backend", cell.backend);
  json.field("scale", static_cast<std::int64_t>(cell.scale));
  json.field("storage", cell.storage);
  json.field("stage_format", cell.stage_format);
  json.field("fast_path", cell.fast_path);
  json.field("source", cell.source.empty() ? "generator" : cell.source);
  if (!cell.algorithm.empty()) json.field("algorithm", cell.algorithm);
  if (cell.csr == "compressed") json.field("csr", cell.csr);
  if (cell.metric != "seconds") json.field("metric", cell.metric);
}

}  // namespace

std::string BenchCell::key() const {
  std::string key = "k" + std::to_string(kernel) + "|" + backend + "|" +
                    std::to_string(scale) + "|" + storage + "|" +
                    stage_format + "|" + (fast_path ? "fast" : "ref") + "|" +
                    (source.empty() ? "generator" : source) + "|" +
                    algorithm;
  // Appended only for the non-default form so cells measured before the
  // axis existed keep their keys (old baselines still match).
  if (csr == "compressed") key += "|csr=compressed";
  if (metric != "seconds") key += "|metric=" + metric;
  return key;
}

std::string cells_json(const std::vector<BenchCell>& cells,
                       const std::string& benchmark) {
  util::JsonWriter json;
  json.begin_object();
  json.field("benchmark", benchmark);
  json.begin_array("cells");
  for (const BenchCell& cell : cells) {
    json.begin_object();
    if (cell.kernel >= 0) {
      json.field("kernel", static_cast<std::int64_t>(cell.kernel));
    }
    json.field("backend", cell.backend);
    json.field("scale", static_cast<std::int64_t>(cell.scale));
    json.field("edges", cell.edges);
    json.field("seconds", cell.seconds);
    json.field("seconds_mad", cell.seconds_mad);
    json.field("cpu_seconds", cell.cpu_seconds);
    json.field("repeats", static_cast<std::int64_t>(cell.repeats));
    json.field("edges_per_second", cell.edges_per_second);
    json.field("peak_rss_bytes", cell.peak_rss_bytes);
    json.field("io_read_bytes", cell.io_read_bytes);
    json.field("io_write_bytes", cell.io_write_bytes);
    json.field("storage", cell.storage);
    json.field("stage_format", cell.stage_format);
    json.field("fast_path", cell.fast_path);
    json.field("source", cell.source.empty() ? "generator" : cell.source);
    if (!cell.algorithm.empty()) json.field("algorithm", cell.algorithm);
    if (cell.csr == "compressed") json.field("csr", cell.csr);
    if (cell.bytes_per_edge > 0) {
      json.field("bytes_per_edge", cell.bytes_per_edge);
    }
    if (cell.metric != "seconds") json.field("metric", cell.metric);
    if (cell.metric == "qps") {
      json.field("qps", cell.qps);
      json.field("qps_mad", cell.qps_mad);
      json.field("p50_ms", cell.p50_ms);
      json.field("p99_ms", cell.p99_ms);
      json.field("p999_ms", cell.p999_ms);
    }
    if (cell.has_perf) {
      json.begin_object("perf");
      json.field("cycles", cell.cycles);
      json.field("instructions", cell.instructions);
      json.field("llc_misses", cell.llc_misses);
      json.field("ipc", cell.ipc);
      json.field("llc_miss_rate", cell.llc_miss_rate);
      json.field("dram_gbps", cell.dram_gbps);
      json.field("peak_bandwidth_fraction", cell.peak_bandwidth_fraction);
      json.end_object();
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

std::vector<BenchCell> parse_cells(const util::JsonValue& document) {
  util::ensure(document.is_object(),
               "prpb-kernels: top level is not an object");
  const util::JsonValue* kind = document.find("benchmark");
  util::ensure(kind != nullptr && kind->is_string() &&
                   (kind->string() == "prpb-kernels" ||
                    kind->string() == "prpb-serving"),
               "prpb-kernels: missing benchmark marker");
  const util::JsonValue* cells = document.find("cells");
  util::ensure(cells != nullptr && cells->is_array(),
               "prpb-kernels: missing \"cells\" array");

  std::vector<BenchCell> parsed;
  parsed.reserve(cells->array().size());
  for (const util::JsonValue& node : cells->array()) {
    util::ensure(node.is_object(), "prpb-kernels: cell is not an object");
    BenchCell cell;
    cell.kernel = static_cast<int>(number_or(node, "kernel", -1));
    cell.backend = string_or(node, "backend", "");
    util::ensure(!cell.backend.empty(),
                 "prpb-kernels: cell without a backend");
    cell.scale = static_cast<int>(number_or(node, "scale", 0));
    cell.edges = uint_or(node, "edges", 0);
    cell.seconds = number_or(node, "seconds", 0);
    cell.seconds_mad = number_or(node, "seconds_mad", 0);
    cell.cpu_seconds = number_or(node, "cpu_seconds", 0);
    cell.repeats = static_cast<int>(number_or(node, "repeats", 1));
    cell.edges_per_second = number_or(node, "edges_per_second", 0);
    cell.peak_rss_bytes = uint_or(node, "peak_rss_bytes", 0);
    cell.io_read_bytes = uint_or(node, "io_read_bytes", 0);
    cell.io_write_bytes = uint_or(node, "io_write_bytes", 0);
    cell.storage = string_or(node, "storage", "");
    cell.stage_format = string_or(node, "stage_format", "");
    const util::JsonValue* fast = node.find("fast_path");
    cell.fast_path = fast != nullptr && fast->is_bool() && fast->boolean();
    cell.source = string_or(node, "source", "generator");
    cell.algorithm = string_or(node, "algorithm", "");
    cell.csr = string_or(node, "csr", "plain");
    cell.bytes_per_edge = number_or(node, "bytes_per_edge", 0);
    cell.metric = string_or(node, "metric", "seconds");
    cell.qps = number_or(node, "qps", 0);
    cell.qps_mad = number_or(node, "qps_mad", 0);
    cell.p50_ms = number_or(node, "p50_ms", 0);
    cell.p99_ms = number_or(node, "p99_ms", 0);
    cell.p999_ms = number_or(node, "p999_ms", 0);
    const util::JsonValue* perf = node.find("perf");
    if (perf != nullptr && perf->is_object()) {
      cell.has_perf = true;
      cell.cycles = uint_or(*perf, "cycles", 0);
      cell.instructions = uint_or(*perf, "instructions", 0);
      cell.llc_misses = uint_or(*perf, "llc_misses", 0);
      cell.ipc = number_or(*perf, "ipc", 0);
      cell.llc_miss_rate = number_or(*perf, "llc_miss_rate", 0);
      cell.dram_gbps = number_or(*perf, "dram_gbps", 0);
      cell.peak_bandwidth_fraction =
          number_or(*perf, "peak_bandwidth_fraction", 0);
    }
    parsed.push_back(std::move(cell));
  }
  return parsed;
}

std::vector<BenchCell> parse_cells_text(const std::string& text) {
  return parse_cells(util::JsonValue::parse(text));
}

const char* verdict_name(CellVerdict verdict) {
  switch (verdict) {
    case CellVerdict::kWithinNoise: return "within_noise";
    case CellVerdict::kRegression: return "regression";
    case CellVerdict::kImprovement: return "improvement";
    case CellVerdict::kAdded: return "added";
    case CellVerdict::kRemoved: return "removed";
  }
  return "unknown";
}

DiffReport diff_cells(const std::vector<BenchCell>& base,
                      const std::vector<BenchCell>& head,
                      const DiffOptions& options) {
  std::unordered_map<std::string, const BenchCell*> by_key;
  by_key.reserve(base.size());
  for (const BenchCell& cell : base) by_key[cell.key()] = &cell;

  DiffReport report;
  for (const BenchCell& cell : head) {
    CellDiff diff;
    diff.head = cell;
    const auto it = by_key.find(cell.key());
    if (it == by_key.end()) {
      diff.verdict = CellVerdict::kAdded;
      ++report.added;
      report.cells.push_back(std::move(diff));
      continue;
    }
    diff.base = *it->second;
    by_key.erase(it);
    const double base_value = diff.base.primary_value();
    const double head_value = diff.head.primary_value();
    if (base_value <= 0 || head_value <= 0) {
      // Degenerate measurement on either side — nothing trustworthy.
      diff.verdict = CellVerdict::kWithinNoise;
      ++report.within_noise;
      report.cells.push_back(std::move(diff));
      continue;
    }
    diff.delta_rel = (head_value - base_value) / base_value;
    diff.band_rel = std::max(
        options.min_rel_band,
        options.noise_mult *
            (diff.base.primary_mad() + diff.head.primary_mad()) /
            base_value);
    // Direction-aware: a seconds cell regresses when it got slower
    // (delta above the band); a qps cell regresses when throughput
    // dropped (delta below the negated band).
    const bool worse = diff.head.higher_is_better()
                           ? diff.delta_rel < -diff.band_rel
                           : diff.delta_rel > diff.band_rel;
    const bool better = diff.head.higher_is_better()
                            ? diff.delta_rel > diff.band_rel
                            : diff.delta_rel < -diff.band_rel;
    if (worse) {
      diff.verdict = CellVerdict::kRegression;
      ++report.regressions;
    } else if (better) {
      diff.verdict = CellVerdict::kImprovement;
      ++report.improvements;
    } else {
      diff.verdict = CellVerdict::kWithinNoise;
      ++report.within_noise;
    }
    report.cells.push_back(std::move(diff));
  }
  // Whatever is left in the map exists only in the baseline.
  for (const BenchCell& cell : base) {
    if (by_key.find(cell.key()) == by_key.end()) continue;
    CellDiff diff;
    diff.base = cell;
    diff.verdict = CellVerdict::kRemoved;
    ++report.removed;
    report.cells.push_back(std::move(diff));
  }
  return report;
}

std::string diff_json(const DiffReport& report, const std::string& base_name,
                      const std::string& head_name,
                      const DiffOptions& options) {
  util::JsonWriter json;
  json.begin_object();
  json.field("benchmark", "prpb-bench-diff");
  json.field("baseline", base_name);
  json.field("candidate", head_name);
  json.begin_object("options");
  json.field("noise_mult", options.noise_mult);
  json.field("min_rel_band", options.min_rel_band);
  json.end_object();
  json.begin_array("cells");
  for (const CellDiff& diff : report.cells) {
    json.begin_object();
    const BenchCell& id =
        diff.verdict == CellVerdict::kRemoved ? diff.base : diff.head;
    write_key_fields(json, id);
    json.field("verdict", verdict_name(diff.verdict));
    const bool qps_cell = id.higher_is_better();
    if (diff.verdict != CellVerdict::kAdded) {
      json.field(qps_cell ? "base_qps" : "base_seconds",
                 diff.base.primary_value());
      json.field("base_mad", diff.base.primary_mad());
    }
    if (diff.verdict != CellVerdict::kRemoved) {
      json.field(qps_cell ? "head_qps" : "head_seconds",
                 diff.head.primary_value());
      json.field("head_mad", diff.head.primary_mad());
    }
    if (diff.verdict == CellVerdict::kRegression ||
        diff.verdict == CellVerdict::kImprovement ||
        diff.verdict == CellVerdict::kWithinNoise) {
      json.field("delta_rel", diff.delta_rel);
      json.field("band_rel", diff.band_rel);
    }
    json.end_object();
  }
  json.end_array();
  json.begin_object("summary");
  json.field("regressions", static_cast<std::int64_t>(report.regressions));
  json.field("improvements",
             static_cast<std::int64_t>(report.improvements));
  json.field("within_noise",
             static_cast<std::int64_t>(report.within_noise));
  json.field("added", static_cast<std::int64_t>(report.added));
  json.field("removed", static_cast<std::int64_t>(report.removed));
  // Head-only cells spelled out so CI logs show which configurations a
  // change introduced (e.g. a new config axis like csr=compressed) —
  // they extend the matrix rather than failing the gate.
  json.begin_array("added_cells");
  for (const CellDiff& diff : report.cells) {
    if (diff.verdict == CellVerdict::kAdded) json.value(diff.head.key());
  }
  json.end_array();
  json.end_object();
  json.field("verdict", report.regressed() ? "regression" : "ok");
  json.end_object();
  return json.str();
}

}  // namespace prpb::model
