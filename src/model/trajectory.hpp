// Benchmark-trajectory model: the BENCH_kernels.json cell schema, its
// serializer/parser, and the noise-aware cell-by-cell diff that decides
// whether a perf change is a real regression or run-to-run jitter.
//
// A cell is one (kernel, backend, scale, storage, stage_format, fast_path,
// source, algorithm) measurement. Since PR 8 a cell carries its noise
// model — `repeats` timings reduced to a median and a MAD (median absolute
// deviation) — plus CPU seconds, /proc/self/io disk traffic, and, when the
// host exposes perf_event_open, counter-derived attribution (IPC, LLC miss
// rate, achieved DRAM GB/s and its fraction of the triad-calibrated peak).
// Old documents without those fields parse fine: repeats defaults to 1,
// the MAD to 0, and the diff falls back to the minimum relative band.
//
// The diff declares a regression only when the median slowdown exceeds
//   band = max(min_rel_band, noise_mult · (MAD_base + MAD_head) / median_base)
// — i.e. a delta has to clear both an absolute floor (protects single-shot
// baselines) and a multiple of the combined measured noise.
//
// Since PR 10 a cell can measure throughput instead of latency: serving
// cells (BENCH_serving.json, written by bench_serving) carry
// metric = "qps" with a qps median/MAD and client-observed latency
// percentiles. The diff is direction-aware — for a qps cell *lower* is
// the regression, so the same band test runs with the sign flipped.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace prpb::util {
class JsonValue;
}

namespace prpb::model {

/// One benchmark cell of the BENCH_kernels.json document.
struct BenchCell {
  int kernel = -1;  ///< 0-3, or -1 for whole-pipeline cells
  std::string backend;
  int scale = 0;
  std::uint64_t edges = 0;
  double seconds = 0;        ///< median wall seconds across repeats
  double seconds_mad = 0;    ///< median absolute deviation of the repeats
  double cpu_seconds = 0;    ///< user+sys CPU of the median trial
  int repeats = 1;           ///< timings the median/MAD were reduced from
  double edges_per_second = 0;  ///< wall-based (keeps the existing clamp)
  std::uint64_t peak_rss_bytes = 0;
  std::uint64_t io_read_bytes = 0;   ///< /proc/self/io delta (0 if masked)
  std::uint64_t io_write_bytes = 0;
  // Cell configuration labels, part of the identity key.
  std::string storage;
  std::string stage_format;
  bool fast_path = false;
  std::string source;     ///< graph source the cell ran on
  std::string algorithm;  ///< kernel-3 cells: the algorithm measured
  /// Kernel-3 CSR form ("plain" | "compressed"). Part of the identity key
  /// only when compressed, so every pre-existing cell keeps its key and a
  /// baseline without the axis diffs clean (compressed cells show up as
  /// "added", never as false regressions).
  std::string csr = "plain";
  /// Structural (column-index) bytes per edge of the measured form: 8.0
  /// plain, the delta-varint encoding size when compressed. 0 when the
  /// cell predates the axis or is not a K3 cell.
  double bytes_per_edge = 0;
  // Hardware-counter attribution (has_perf gates serialization; absent on
  // hosts without perf_event_open).
  bool has_perf = false;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
  double ipc = 0;
  double llc_miss_rate = 0;
  double dram_gbps = 0;               ///< LLC-miss-derived achieved GB/s
  double peak_bandwidth_fraction = 0; ///< dram_gbps / triad peak
  /// Primary measurement of the cell: "seconds" (kernel cells, lower is
  /// better) or "qps" (serving cells, higher is better). Part of the
  /// identity key only when non-default, so pre-existing cells keep their
  /// keys. The diff judges the matching value with the matching direction.
  std::string metric = "seconds";
  // Serving measurements (metric == "qps").
  double qps = 0;      ///< median sustained queries/second across repeats
  double qps_mad = 0;  ///< MAD of the per-repeat QPS
  double p50_ms = 0;   ///< client-observed per-request latency percentiles
  double p99_ms = 0;
  double p999_ms = 0;

  /// Identity for cell-by-cell diffs (everything but the measurements).
  [[nodiscard]] std::string key() const;

  /// True for throughput cells (higher primary value is better).
  [[nodiscard]] bool higher_is_better() const { return metric == "qps"; }
  /// The primary measured value the diff judges (seconds or qps).
  [[nodiscard]] double primary_value() const {
    return higher_is_better() ? qps : seconds;
  }
  [[nodiscard]] double primary_mad() const {
    return higher_is_better() ? qps_mad : seconds_mad;
  }
};

/// Serializes cells as a machine-readable benchmark document
/// ({"benchmark": <marker>, "cells": [...]}). The marker defaults to the
/// kernel document ("prpb-kernels"); bench_serving writes "prpb-serving".
std::string cells_json(const std::vector<BenchCell>& cells,
                       const std::string& benchmark = "prpb-kernels");

/// Parses a prpb-kernels or prpb-serving document; pre-PR-8 documents (no
/// repeats / MAD / counter fields) load with defaults. Throws
/// util::IoError on malformed JSON and util::InvariantError on a wrong
/// document shape.
std::vector<BenchCell> parse_cells(const util::JsonValue& document);
std::vector<BenchCell> parse_cells_text(const std::string& text);

struct DiffOptions {
  /// Band width in combined MADs — ~4 keeps false alarms rare while a
  /// genuine 10% slowdown on a quiet cell still trips it.
  double noise_mult = 4.0;
  /// Relative band floor; also the whole band for single-shot cells.
  double min_rel_band = 0.05;
};

enum class CellVerdict {
  kWithinNoise,
  kRegression,   ///< median slowdown beyond the noise band
  kImprovement,  ///< median speedup beyond the noise band
  kAdded,        ///< cell only in the head document
  kRemoved,      ///< cell only in the base document
};
const char* verdict_name(CellVerdict verdict);

struct CellDiff {
  BenchCell base;  ///< default-constructed for kAdded
  BenchCell head;  ///< default-constructed for kRemoved
  CellVerdict verdict = CellVerdict::kWithinNoise;
  /// Relative change of the cell's primary value ((head - base) / base):
  /// seconds for kernel cells, qps for serving cells. The verdict is
  /// direction-aware — for qps, delta_rel < -band is the regression.
  double delta_rel = 0;
  double band_rel = 0;  ///< the noise band the delta was judged against
};

struct DiffReport {
  std::vector<CellDiff> cells;  ///< head order, then removed base cells
  int regressions = 0;
  int improvements = 0;
  int within_noise = 0;
  int added = 0;
  int removed = 0;

  /// The CI gate: true when any matched cell regressed.
  [[nodiscard]] bool regressed() const { return regressions > 0; }
};

/// Cell-by-cell comparison of two documents' cells, keyed on
/// BenchCell::key(). Added/removed cells never count as regressions.
DiffReport diff_cells(const std::vector<BenchCell>& base,
                      const std::vector<BenchCell>& head,
                      const DiffOptions& options = {});

/// Machine-readable verdict document ({"benchmark": "prpb-bench-diff",
/// ..., "verdict": "regression" | "ok"}) for CI consumption.
std::string diff_json(const DiffReport& report, const std::string& base_name,
                      const std::string& head_name,
                      const DiffOptions& options = {});

}  // namespace prpb::model
