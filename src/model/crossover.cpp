#include "model/crossover.hpp"

#include "util/error.hpp"

namespace prpb::model {

int max_in_memory_sort_scale(std::uint64_t ram_bytes, int edge_factor) {
  util::require(edge_factor >= 1, "crossover: edge_factor must be >= 1");
  int best = 0;
  for (int scale = 1; scale <= 40; ++scale) {
    const std::uint64_t edges =
        static_cast<std::uint64_t>(edge_factor) << scale;
    const std::uint64_t needed = 2 * edges * 16;  // input + radix scratch
    if (needed <= ram_bytes) {
      best = scale;
    } else {
      break;
    }
  }
  return best;
}

int target_scale_for_ram(std::uint64_t ram_bytes, double fraction,
                         int edge_factor) {
  util::require(fraction > 0 && fraction <= 1,
                "crossover: fraction must be in (0, 1]");
  const auto budget =
      static_cast<std::uint64_t>(fraction * static_cast<double>(ram_bytes));
  int best = 0;
  for (int scale = 1; scale <= 40; ++scale) {
    const std::uint64_t bytes =
        (static_cast<std::uint64_t>(edge_factor) << scale) * 16;
    if (bytes <= budget) {
      best = scale;
    } else {
      break;
    }
  }
  return best;
}

CostTerm dominant_term(const KernelPrediction& prediction) {
  if (prediction.io_fraction >= prediction.compute_fraction &&
      prediction.io_fraction >= prediction.software_fraction) {
    return CostTerm::kIo;
  }
  if (prediction.compute_fraction >= prediction.software_fraction) {
    return CostTerm::kCompute;
  }
  return CostTerm::kSoftware;
}

const char* cost_term_name(CostTerm term) {
  switch (term) {
    case CostTerm::kIo: return "io";
    case CostTerm::kCompute: return "compute";
    case CostTerm::kSoftware: return "software";
  }
  return "?";
}

int io_bound_crossover_scale(const HardwareModel& hw,
                             const BackendTraits& traits, int kernel,
                             int min_scale, int max_scale, int edge_factor) {
  util::require(kernel >= 0 && kernel <= 3,
                "crossover: kernel must be 0-3");
  util::require(min_scale >= 1 && min_scale <= max_scale,
                "crossover: bad scale range");
  for (int scale = min_scale; scale <= max_scale; ++scale) {
    KernelPrediction p;
    switch (kernel) {
      case 0: p = predict_kernel0(hw, traits, scale, edge_factor); break;
      case 1: p = predict_kernel1(hw, traits, scale, edge_factor); break;
      case 2: p = predict_kernel2(hw, traits, scale, edge_factor); break;
      case 3: p = predict_kernel3(hw, traits, scale, edge_factor); break;
    }
    if (dominant_term(p) == CostTerm::kIo) return scale;
  }
  return -1;
}

}  // namespace prpb::model
