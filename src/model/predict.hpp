// Kernel runtime predictions from the hardware model.
//
// Each kernel is modelled as a sum of data-movement terms (bytes / measured
// rate) and per-edge software terms (codec + dispatch costs that depend on
// the backend stack). The point — per the paper — is not precision but that
// a handful of measured rates predicts the ordering and rough magnitude of
// every kernel across stacks.
#pragma once

#include <string>

#include "model/hardware.hpp"

namespace prpb::model {

/// Per-stack software costs layered over the hardware model.
struct BackendTraits {
  std::string name;
  double format_s = 0;          ///< seconds per edge formatted (K0, K1 write)
  double parse_s = 0;           ///< seconds per edge parsed (K1-K2 read)
  double dispatch_s = 0;        ///< extra per-edge interpreter/dataframe tax
  double sort_byte_passes = 8;  ///< effective data passes during the sort
};

/// Traits for a named pipeline backend, derived from the hardware model's
/// codec probes. Throws ConfigError for unknown names.
BackendTraits backend_traits(const std::string& backend,
                             const HardwareModel& hw);

struct KernelPrediction {
  double seconds = 0;
  double edges_per_second = 0;
  double io_fraction = 0;       ///< share of time in file I/O terms
  double compute_fraction = 0;  ///< share in memory/flop terms
  double software_fraction = 0; ///< share in codec/dispatch terms
};

struct PipelinePrediction {
  KernelPrediction k0, k1, k2, k3;
};

/// Average bytes of one TSV edge record at the given scale (digits of the
/// vertex labels + tab + newline).
double tsv_edge_bytes(int scale);

KernelPrediction predict_kernel0(const HardwareModel& hw,
                                 const BackendTraits& traits, int scale,
                                 int edge_factor);
KernelPrediction predict_kernel1(const HardwareModel& hw,
                                 const BackendTraits& traits, int scale,
                                 int edge_factor);
KernelPrediction predict_kernel2(const HardwareModel& hw,
                                 const BackendTraits& traits, int scale,
                                 int edge_factor);
KernelPrediction predict_kernel3(const HardwareModel& hw,
                                 const BackendTraits& traits, int scale,
                                 int edge_factor, int iterations = 20);

PipelinePrediction predict_pipeline(const HardwareModel& hw,
                                    const BackendTraits& traits, int scale,
                                    int edge_factor, int iterations = 20);

}  // namespace prpb::model
