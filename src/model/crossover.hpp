// Crossover analysis: the scale thresholds the hardware model predicts —
// where kernel 1 must go out-of-core, where a kernel flips from
// software-bound to I/O-bound, and what problem size fits the paper's
// "~25% of available RAM" target-scale rule.
#pragma once

#include <cstdint>
#include <string>

#include "model/hardware.hpp"
#include "model/predict.hpp"

namespace prpb::model {

/// Largest scale whose in-memory kernel-1 sort (2 copies of 16-byte edges)
/// fits within `ram_bytes`. Returns 0 when even scale 1 does not fit.
int max_in_memory_sort_scale(std::uint64_t ram_bytes, int edge_factor = 16);

/// The paper's target-scale rule: the largest S whose edge data
/// (16 bytes/edge) consumes at most `fraction` of `ram_bytes`.
int target_scale_for_ram(std::uint64_t ram_bytes, double fraction = 0.25,
                         int edge_factor = 16);

/// Dominant predicted cost term of a kernel at one scale.
enum class CostTerm { kIo, kCompute, kSoftware };
CostTerm dominant_term(const KernelPrediction& prediction);
const char* cost_term_name(CostTerm term);

/// First scale in [min_scale, max_scale] at which `kernel`'s dominant term
/// becomes I/O for the given stack, or -1 if it never does. The paper:
/// "it is possible to construct scenarios in which different steps of
/// kernel 2 could be dominant".
int io_bound_crossover_scale(const HardwareModel& hw,
                             const BackendTraits& traits, int kernel,
                             int min_scale, int max_scale,
                             int edge_factor = 16);

}  // namespace prpb::model
