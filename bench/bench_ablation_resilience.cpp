// Ablation: what the resilience layers cost when nothing goes wrong — the
// pass-through tax of the fault-injecting store, the digest layer's
// checksum-on-write overhead, checkpoint commit/validate latency, and the
// end-to-end pipeline gap between a bare run and a checkpointed one. The
// interesting result is the ratio, not the absolute numbers: checkpointing
// re-reads every committed stage once, so its cost tracks stage bytes, not
// kernel compute.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/backend.hpp"
#include "core/runner.hpp"
#include "fault/checkpoint.hpp"
#include "fault/inject.hpp"
#include "fault/plan.hpp"
#include "gen/kronecker.hpp"
#include "io/edge_files.hpp"
#include "io/stage_store.hpp"
#include "io/tsv.hpp"
#include "util/fs.hpp"

namespace {

using namespace prpb;

gen::EdgeList sample_edges(int scale) {
  gen::KroneckerParams params;
  params.scale = scale;
  return gen::KroneckerGenerator(params).generate_all();
}

// ---- store decoration tax ---------------------------------------------------
// Arg 0 selects the stack: 0 = bare MemStageStore, 1 = + fault store with a
// never-matching plan, 2 = + digest layer. Same writes each way, so the
// deltas are the per-layer overhead on the hot write path.

void BM_WriteThroughResilienceStack(benchmark::State& state) {
  const gen::EdgeList edges = sample_edges(14);
  io::MemStageStore base;
  std::unique_ptr<fault::FaultInjectingStageStore> faulty;
  std::unique_ptr<fault::ShardDigestStore> digests;
  io::StageStore* store = &base;
  const int stack = static_cast<int>(state.range(0));
  if (stack >= 1) {
    // A plan for a stage the benchmark never touches: every operation
    // still pays the rule-matching check, but nothing fires.
    faulty = std::make_unique<fault::FaultInjectingStageStore>(
        *store, fault::FaultPlan::parse("read_error@never#1", 7));
    store = faulty.get();
  }
  if (stack >= 2) {
    digests = std::make_unique<fault::ShardDigestStore>(*store);
    store = digests.get();
  }
  for (auto _ : state) {
    io::write_edge_list(*store, "k0_edges", edges, 4,
                        io::tsv_codec(io::Codec::kFast));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(edges.size()) *
                          state.iterations());
  state.SetLabel(stack == 0 ? "bare" : stack == 1 ? "+fault" : "+fault+digest");
}

BENCHMARK(BM_WriteThroughResilienceStack)
    ->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

// ---- checkpoint commit + validate -------------------------------------------
// Commit re-reads the stage to verify the as-written digests; validate
// re-reads it again against the manifest. Both scale with stage bytes.

void BM_CheckpointCommit(benchmark::State& state) {
  const gen::EdgeList edges = sample_edges(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    io::MemStageStore base;
    fault::ShardDigestStore digests(base);
    fault::CheckpointManager checkpoints(digests, digests, 1, "tsv");
    io::write_edge_list(digests, "k0_edges", edges, 4,
                        io::tsv_codec(io::Codec::kFast));
    state.ResumeTiming();
    checkpoints.commit("k0_edges");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(edges.size()) *
                          state.iterations());
}

void BM_CheckpointValidate(benchmark::State& state) {
  const gen::EdgeList edges = sample_edges(static_cast<int>(state.range(0)));
  io::MemStageStore base;
  fault::ShardDigestStore digests(base);
  fault::CheckpointManager checkpoints(digests, digests, 1, "tsv");
  io::write_edge_list(digests, "k0_edges", edges, 4,
                      io::tsv_codec(io::Codec::kFast));
  checkpoints.commit("k0_edges");
  for (auto _ : state) {
    const fault::ManifestCheck check = checkpoints.validate("k0_edges");
    benchmark::DoNotOptimize(check.status);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(edges.size()) *
                          state.iterations());
}

BENCHMARK(BM_CheckpointCommit)->Arg(12)->Arg(14)->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CheckpointValidate)->Arg(12)->Arg(14)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// ---- end-to-end pipeline tax ------------------------------------------------
// Arg 0: 0 = bare run, 1 = checkpointed run, 2 = checkpointed run that
// also absorbs one transient write fault with a retry (the recovery cost).

void BM_PipelineResilience(benchmark::State& state) {
  core::PipelineConfig config;
  config.scale = 12;
  config.num_files = 2;
  config.storage = "mem";
  const auto backend = core::make_backend("native");
  const int mode = static_cast<int>(state.range(0));
  for (auto _ : state) {
    io::MemStageStore store;
    core::RunOptions options;
    options.store = &store;
    options.checkpoint = mode >= 1;
    if (mode >= 2) {
      options.fault_plan =
          fault::FaultPlan::parse("torn_write@k1_sorted#1", 11);
      options.retry.max_attempts = 3;
      options.retry.base_delay_ms = 0.0;
    }
    const core::PipelineResult result =
        core::run_pipeline(config, *backend, options);
    benchmark::DoNotOptimize(result.ranks.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(config.num_edges()) * state.iterations());
  state.SetLabel(mode == 0   ? "bare"
                 : mode == 1 ? "checkpoint"
                             : "checkpoint+retry");
}

BENCHMARK(BM_PipelineResilience)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
