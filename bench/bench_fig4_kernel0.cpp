// Figure 4 — kernel 0 (generate + write): edges/sec vs number of edges,
// one series per stack. The paper's insight target: "performance of the
// code for writing data to non-volatile storage"; the fast-codec stacks
// cluster above the generic-codec stacks.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  prpb::bench::SweepOptions options;
  if (!prpb::bench::parse_sweep_options(
          argc, argv, "bench_fig4_kernel0",
          "Figure 4: kernel 0 generate+write rates per stack", options)) {
    return 0;
  }
  const auto points = prpb::bench::sweep_kernel(options, 0);
  prpb::bench::print_series(
      "Figure 4 — Kernel 0 (generate graph, write edge files)", points);
  return 0;
}
