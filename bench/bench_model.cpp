// Hardware-model validation (paper §V: "performance predictions can be
// made based on simple computing hardware models").
// Calibrates the model on this machine, predicts every kernel for the
// native and arraylang stacks, measures the real thing, and prints
// predicted vs measured with the ratio.
#include <cstdio>

#include "bench_common.hpp"
#include "model/crossover.hpp"
#include "model/hardware.hpp"
#include "model/predict.hpp"

int main(int argc, char** argv) {
  using namespace prpb;

  util::ArgParser args("bench_model",
                       "hardware-model predictions vs measurements");
  args.add_option("scale", "graph scale to verify at", "16");
  if (!args.parse(argc, argv)) return 0;
  const int scale = static_cast<int>(args.get_int("scale"));

  std::printf("calibrating hardware model...\n");
  const model::HardwareModel hw = model::calibrate();
  std::printf("  memory bandwidth : %s/s\n",
              util::human_bytes(
                  static_cast<std::uint64_t>(hw.memory_bandwidth_bps))
                  .c_str());
  std::printf("  triad bandwidth  : %s/s (peak for achieved-GB/s)\n",
              util::human_bytes(
                  static_cast<std::uint64_t>(hw.triad_bandwidth_bps))
                  .c_str());
  std::printf("  io write / read  : %s/s / %s/s\n",
              util::human_bytes(static_cast<std::uint64_t>(hw.io_write_bps))
                  .c_str(),
              util::human_bytes(static_cast<std::uint64_t>(hw.io_read_bps))
                  .c_str());
  std::printf("  flops            : %.2e\n", hw.flops);
  std::printf("  codec ns/edge    : fast %.0f/%.0f  generic %.0f/%.0f "
              "(format/parse)\n\n",
              hw.fast_format_s * 1e9, hw.fast_parse_s * 1e9,
              hw.generic_format_s * 1e9, hw.generic_parse_s * 1e9);

  bench::SweepOptions options;
  options.min_scale = scale;
  options.max_scale = scale;
  options.backends = {"native", "arraylang"};

  util::TextTable table({"backend", "kernel", "predicted s", "measured s",
                         "ratio"});
  for (int kernel = 0; kernel <= 3; ++kernel) {
    const auto measured = bench::sweep_kernel(options, kernel);
    for (const auto& point : measured) {
      const auto traits = model::backend_traits(point.backend, hw);
      model::KernelPrediction prediction;
      switch (kernel) {
        case 0: prediction = model::predict_kernel0(hw, traits, scale, 16);
                break;
        case 1: prediction = model::predict_kernel1(hw, traits, scale, 16);
                break;
        case 2: prediction = model::predict_kernel2(hw, traits, scale, 16);
                break;
        case 3: prediction = model::predict_kernel3(hw, traits, scale, 16);
                break;
      }
      table.add_row({point.backend, "K" + std::to_string(kernel),
                     util::fixed(prediction.seconds, 4),
                     util::fixed(point.seconds, 4),
                     util::fixed(prediction.seconds /
                                     std::max(point.seconds, 1e-9),
                                 2)});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("a ratio within ~3x in either direction is the accuracy the "
              "paper's\n'simple hardware models' aim for; the point is "
              "ordering, not precision.\n\n");

  // Crossover analysis: the thresholds the model implies for this machine.
  const std::uint64_t ram = 15ULL << 30;  // report for a 15 GB node
  std::printf("crossover analysis (assuming %s RAM):\n",
              util::human_bytes(ram).c_str());
  std::printf("  paper's target-scale rule (edges ~25%% of RAM): S = %d\n",
              model::target_scale_for_ram(ram));
  std::printf("  largest in-memory kernel-1 sort:               S = %d\n",
              model::max_in_memory_sort_scale(ram));
  for (const char* name : {"native", "arraylang"}) {
    const auto traits = model::backend_traits(name, hw);
    const int cross =
        model::io_bound_crossover_scale(hw, traits, 0, 10, 36);
    if (cross >= 0) {
      std::printf("  %s kernel 0 becomes I/O-bound at:        S = %d\n",
                  name, cross);
    } else {
      std::printf("  %s kernel 0 stays software/compute-bound through "
                  "S = 36\n",
                  name);
    }
  }
  return 0;
}
