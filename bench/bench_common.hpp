// Shared helpers for the PRPB benchmark harness binaries.
//
// Each figure binary sweeps {backend x scale}, times one kernel per cell
// exactly the way the paper does (wall time for the full kernel, edges/sec
// metric), and prints the figure's series as a table:
//     backend  scale  edges  seconds  edges/sec
// Absolute numbers differ from the paper's Xeon/Lustre platform; the series
// *shape* (ordering, dispersion, trend in M) is the reproduction target —
// see EXPERIMENTS.md.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/backend_native.hpp"
#include "core/config.hpp"
#include "core/runner.hpp"
#include "io/file_stream.hpp"
#include "obs/resource_sampler.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/fs.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace prpb::bench {

struct SweepOptions {
  int min_scale = 16;
  int max_scale = 18;
  std::vector<std::string> backends = core::backend_names();
  std::size_t num_files = 4;
  std::uint64_t seed = 20160205;
  int trials = 1;        ///< repeated timings per cell; median is reported
  std::string csv_path;  ///< when set, the series is also written as CSV
  std::string generator = "kronecker";
  std::string source = "generator";  ///< kernel-0 graph source
  std::string input_path;            ///< external edge-list file
  /// Kernel-3 algorithms to sweep (each gets its own cell). Binaries
  /// preset their own default; --algorithms overrides.
  std::vector<std::string> algorithms = {"pagerank"};
  std::string storage = "dir";       ///< stage store kind: dir | mem
  std::string stage_format = "tsv";  ///< stage encoding: tsv | binary
  bool fast_path = false;  ///< run cells with the src/perf fast paths on
  std::string trace_out;  ///< when set, write a Chrome trace of the sweep
  std::string json_path;  ///< when set, the series is also written as JSON
};

/// Standard CLI for figure benches. Returns false if --help was printed.
inline bool parse_sweep_options(int argc, char** argv, const char* name,
                                const char* doc, SweepOptions& options) {
  util::ArgParser args(name, doc);
  args.add_option("min-scale", "smallest scale to run", "16");
  args.add_option("max-scale",
                  "largest scale to run (paper sweeps to 22)", "18");
  args.add_option("backends",
                  "comma-separated backend list (default: all)", "");
  args.add_option("files", "shard files per stage", "4");
  args.add_option("seed", "generator seed", "20160205");
  args.add_option("trials", "timings per cell (median reported)", "1");
  args.add_option("csv", "also write the series to this CSV file", "");
  args.add_option("generator", "kronecker|bter|ppl", "kronecker");
  args.add_option("source", "graph source: generator | external", "generator");
  args.add_option("input",
                  "external edge-list file; implies --source external", "");
  args.add_option("algorithms",
                  "comma-separated kernel-3 algorithms "
                  "(pagerank,pagerank_dopt,bfs,cc); default depends on the "
                  "binary", "");
  args.add_option("storage", "stage store: dir (disk) | mem (in-memory)",
                  "dir");
  args.add_option("stage-format", "stage encoding: tsv | binary", "tsv");
  args.add_option("fast-path",
                  "src/perf fast paths (radix sort, prefetch, blocked "
                  "SpMV): on | off", "off");
  args.add_option("trace-out",
                  "write a Chrome trace_event JSON trace of the sweep", "");
  args.add_option("json",
                  "also write the series to this JSON file", "");
  if (!args.parse(argc, argv)) return false;
  options.min_scale = static_cast<int>(args.get_int("min-scale"));
  options.max_scale = static_cast<int>(args.get_int("max-scale"));
  options.num_files = static_cast<std::size_t>(args.get_int("files"));
  options.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  options.trials = static_cast<int>(args.get_int("trials"));
  options.csv_path = args.get("csv");
  options.generator = args.get("generator");
  options.source = args.get("source");
  options.input_path = args.get("input");
  if (!options.input_path.empty() && options.source == "generator") {
    options.source = "external";
  }
  if (!args.get("algorithms").empty()) {
    options.algorithms = core::parse_algorithm_list(args.get("algorithms"));
  }
  options.storage = args.get("storage");
  options.stage_format = args.get("stage-format");
  const std::string fast_path = args.get("fast-path");
  util::require(fast_path == "on" || fast_path == "off",
                "--fast-path must be 'on' or 'off'");
  options.fast_path = fast_path == "on";
  options.trace_out = args.get("trace-out");
  options.json_path = args.get("json");
  util::require(options.trials >= 1, "--trials must be >= 1");
  util::require(options.storage == "dir" || options.storage == "mem",
                "--storage must be dir or mem");
  const std::string list = args.get("backends");
  if (!list.empty()) {
    options.backends.clear();
    std::size_t pos = 0;
    while (pos <= list.size()) {
      const std::size_t comma = list.find(',', pos);
      const std::string item =
          comma == std::string::npos ? list.substr(pos)
                                     : list.substr(pos, comma - pos);
      if (!item.empty()) options.backends.push_back(item);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  return true;
}

/// One figure cell: a kernel measurement for (backend, scale).
struct SeriesPoint {
  int kernel = -1;  ///< 0-3, or -1 for whole-pipeline cells
  std::string backend;
  int scale = 0;
  std::uint64_t edges = 0;
  double seconds = 0;
  double edges_per_second = 0;
  std::uint64_t peak_rss_bytes = 0;
  // Cell configuration labels, carried into machine-readable output.
  std::string storage;
  std::string stage_format;
  bool fast_path = false;
  std::string source;     ///< graph source the cell ran on
  std::string algorithm;  ///< kernel-3 cells: the algorithm measured
};

/// Serializes sweep cells as the machine-readable kernel benchmark
/// document ({"benchmark": "prpb-kernels", "cells": [...]}) consumed by
/// BENCH_kernels.json readers.
inline std::string kernels_json(const std::vector<SeriesPoint>& points) {
  util::JsonWriter json;
  json.begin_object();
  json.field("benchmark", "prpb-kernels");
  json.begin_array("cells");
  for (const auto& p : points) {
    json.begin_object();
    if (p.kernel >= 0) {
      json.field("kernel", static_cast<std::int64_t>(p.kernel));
    }
    json.field("backend", p.backend);
    json.field("scale", static_cast<std::int64_t>(p.scale));
    json.field("edges", p.edges);
    json.field("seconds", p.seconds);
    json.field("edges_per_second", p.edges_per_second);
    json.field("peak_rss_bytes", p.peak_rss_bytes);
    json.field("storage", p.storage);
    json.field("stage_format", p.stage_format);
    json.field("fast_path", p.fast_path);
    json.field("source", p.source.empty() ? "generator" : p.source);
    if (!p.algorithm.empty()) json.field("algorithm", p.algorithm);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

inline void print_series(const std::string& title,
                         const std::vector<SeriesPoint>& points) {
  std::printf("## %s\n\n", title.c_str());
  util::TextTable table({"backend", "scale", "edges", "seconds",
                         "edges/sec"});
  for (const auto& p : points) {
    table.add_row({p.backend, std::to_string(p.scale),
                   util::human_count(p.edges), util::fixed(p.seconds, 4),
                   util::sci(p.edges_per_second)});
  }
  std::printf("%s\n", table.str().c_str());
}

/// Builds the standard pipeline config for one sweep cell.
inline core::PipelineConfig cell_config(const util::TempDir& work,
                                        const SweepOptions& options,
                                        int scale) {
  core::PipelineConfig config;
  config.scale = scale;
  config.num_files = options.num_files;
  config.seed = options.seed;
  config.generator = options.generator;
  config.source = options.source;
  config.input_path = options.input_path;
  config.algorithms = options.algorithms;
  config.storage = options.storage;
  config.stage_format = options.stage_format;
  config.fast_path = options.fast_path;
  config.work_dir = work.path();
  return config;
}

/// Runs one kernel for every (backend, scale) sweep cell and returns the
/// figure series. Earlier pipeline stages are prepared untimed with the
/// native backend — legal because every backend produces identical stages
/// (enforced by the integration tests). Kernel-3 cells measure `algorithm`
/// (the paper's fixed PageRank by default). External sources ignore the
/// scale axis: the input file determines the graph, so exactly one pass
/// runs, labeled with min_scale.
inline std::vector<SeriesPoint> sweep_kernel(
    const SweepOptions& options, int kernel,
    const std::string& algorithm = "pagerank") {
  std::vector<SeriesPoint> points;
  // Tracing is opt-in (--trace-out); the resource sampler always runs so
  // every cell line can report its peak RSS.
  obs::TraceRecorder recorder(!options.trace_out.empty());
  obs::Hooks hooks;
  if (recorder.enabled()) hooks.trace = &recorder;
  obs::ResourceSampler::Options sampler_options;
  if (recorder.enabled()) sampler_options.trace = &recorder;
  obs::ResourceSampler sampler(sampler_options);
  sampler.start();
  for (int scale = options.min_scale; scale <= options.max_scale; ++scale) {
    // Shared untimed preparation per scale.
    util::TempDir work("prpb-fig");
    core::PipelineConfig config = cell_config(work, options, scale);
    const auto store = core::make_stage_store(config);
    const auto context = [&](std::string in, std::string out) {
      core::KernelContext ctx{config, *store, std::move(in),
                              std::move(out), core::stages::kTemp};
      ctx.hooks = hooks;
      return ctx;
    };
    core::NativeBackend prep;
    if (kernel >= 1) {
      if (config.source == "external") {
        const auto graph_source = core::make_graph_source(config);
        const core::GraphSummary graph =
            graph_source->materialize(context("", core::stages::kStage0),
                                      prep);
        config.external_vertices = graph.vertices;
        config.external_edges = graph.edges;
      } else {
        prep.kernel0(context("", core::stages::kStage0));
      }
    }
    if (kernel >= 2)
      prep.kernel1(context(core::stages::kStage0, core::stages::kStage1));
    sparse::CsrMatrix matrix;
    if (kernel >= 3)
      matrix = prep.kernel2(context(core::stages::kStage1, ""));

    for (const auto& name : options.backends) {
      const auto backend = core::make_backend(name);
      std::vector<double> timings;
      timings.reserve(options.trials);
      std::uint64_t k3_work = 0;
      sampler.reset_peak();
      for (int trial = 0; trial < options.trials; ++trial) {
        util::Stopwatch watch;
        switch (kernel) {
          case 0:
            if (config.source == "external") {
              const auto graph_source = core::make_graph_source(config);
              const core::GraphSummary graph =
                  graph_source->materialize(context("", "trial_k0"),
                                            *backend);
              config.external_vertices = graph.vertices;
              config.external_edges = graph.edges;
            } else {
              backend->kernel0(context("", "trial_k0"));
            }
            break;
          case 1:
            backend->kernel1(context(core::stages::kStage0, "trial_k1"));
            break;
          case 2:
            (void)backend->kernel2(context(core::stages::kStage1, ""));
            break;
          case 3: {
            const core::AlgorithmResult out =
                backend->run_algorithm(context("", ""), matrix, algorithm);
            k3_work = out.work_edges;
            break;
          }
          default:
            throw util::ConfigError("sweep_kernel: kernel must be 0-3");
        }
        timings.push_back(watch.seconds());
        store->remove("trial_k0");
        store->remove("trial_k1");
      }
      std::uint64_t processed = config.num_edges();
      if (kernel == 3) processed = k3_work;
      const double seconds = util::median(timings);
      // The background thread may not have sampled within a short cell, so
      // fold in one synchronous reading before reporting the peak.
      const std::uint64_t peak_rss =
          std::max(sampler.peak_rss_bytes(),
                   obs::ResourceSampler::sample_now().rss_bytes);
      SeriesPoint point;
      point.kernel = kernel;
      point.backend = name;
      point.scale = scale;
      point.edges = config.num_edges();
      point.seconds = seconds;
      point.edges_per_second =
          seconds > 0 ? static_cast<double>(processed) / seconds : 0.0;
      point.peak_rss_bytes = peak_rss;
      point.storage = config.storage;
      point.stage_format = config.stage_format;
      point.fast_path = config.fast_path;
      point.source = config.source;
      if (kernel == 3) point.algorithm = algorithm;
      points.push_back(std::move(point));
      std::fprintf(stderr,
                   "  [fig] kernel%d%s%s %s scale %d: %.3fs (peak RSS "
                   "%.1f MB)\n",
                   kernel, kernel == 3 ? "/" : "",
                   kernel == 3 ? algorithm.c_str() : "", name.c_str(), scale,
                   seconds,
                   static_cast<double>(peak_rss) / (1024.0 * 1024.0));
    }
    // The input file fixes the graph; more scales would repeat the cell.
    if (config.source == "external") break;
  }
  sampler.stop();
  if (!options.trace_out.empty()) {
    recorder.write_chrome_trace(options.trace_out);
    std::fprintf(stderr, "  [fig] trace written to %s (%zu events)\n",
                 options.trace_out.c_str(), recorder.event_count());
  }
  if (!options.csv_path.empty()) {
    std::string csv = "backend,scale,edges,seconds,edges_per_second\n";
    for (const auto& p : points) {
      csv += p.backend + "," + std::to_string(p.scale) + "," +
             std::to_string(p.edges) + "," + util::fixed(p.seconds, 6) +
             "," + util::sci(p.edges_per_second) + "\n";
    }
    io::write_file(options.csv_path, csv);
  }
  if (!options.json_path.empty()) {
    io::write_file(options.json_path, kernels_json(points) + "\n");
  }
  return points;
}

}  // namespace prpb::bench
