// Shared helpers for the PRPB benchmark harness binaries.
//
// Each figure binary sweeps {backend x scale}, times one kernel per cell
// exactly the way the paper does (wall time for the full kernel, edges/sec
// metric), and prints the figure's series as a table:
//     backend  scale  edges  seconds  edges/sec
// Absolute numbers differ from the paper's Xeon/Lustre platform; the series
// *shape* (ordering, dispersion, trend in M) is the reproduction target —
// see EXPERIMENTS.md.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/backend_native.hpp"
#include "core/config.hpp"
#include "core/runner.hpp"
#include "io/file_stream.hpp"
#include "model/hardware.hpp"
#include "model/trajectory.hpp"
#include "obs/perf_counters.hpp"
#include "obs/resource_sampler.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/fs.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace prpb::bench {

struct SweepOptions {
  int min_scale = 16;
  int max_scale = 18;
  std::vector<std::string> backends = core::backend_names();
  std::size_t num_files = 4;
  std::uint64_t seed = 20160205;
  /// Repeated timings per cell; the median is reported and the MAD is the
  /// cell's noise model (--repeats; --trials is the historical alias).
  int trials = 1;
  std::string csv_path;  ///< when set, the series is also written as CSV
  std::string generator = "kronecker";
  std::string source = "generator";  ///< kernel-0 graph source
  std::string input_path;            ///< external edge-list file
  /// Kernel-3 algorithms to sweep (each gets its own cell). Binaries
  /// preset their own default; --algorithms overrides.
  std::vector<std::string> algorithms = {"pagerank"};
  std::string storage = "dir";       ///< stage store kind: dir | mem
  std::string stage_format = "tsv";  ///< stage encoding: tsv | binary
  std::string csr = "plain";  ///< kernel-3 CSR form: plain | compressed
  bool fast_path = false;  ///< run cells with the src/perf fast paths on
  std::string trace_out;  ///< when set, write a Chrome trace of the sweep
  std::string json_path;  ///< when set, the series is also written as JSON
};

/// Standard CLI for figure benches. Returns false if --help was printed.
inline bool parse_sweep_options(int argc, char** argv, const char* name,
                                const char* doc, SweepOptions& options) {
  util::ArgParser args(name, doc);
  args.add_option("min-scale", "smallest scale to run", "16");
  args.add_option("max-scale",
                  "largest scale to run (paper sweeps to 22)", "18");
  args.add_option("backends",
                  "comma-separated backend list (default: all)", "");
  args.add_option("files", "shard files per stage", "4");
  args.add_option("seed", "generator seed", "20160205");
  args.add_option("trials", "timings per cell (median reported)", "1");
  args.add_option("repeats",
                  "timings per cell, median + MAD recorded (preferred "
                  "spelling of --trials)", "0");
  args.add_option("csv", "also write the series to this CSV file", "");
  args.add_option("generator", "kronecker|bter|ppl", "kronecker");
  args.add_option("source", "graph source: generator | external", "generator");
  args.add_option("input",
                  "external edge-list file; implies --source external", "");
  args.add_option("algorithms",
                  "comma-separated kernel-3 algorithms "
                  "(pagerank,pagerank_dopt,bfs,cc); default depends on the "
                  "binary", "");
  args.add_option("storage", "stage store: dir (disk) | mem (in-memory)",
                  "dir");
  args.add_option("stage-format", "stage encoding: tsv | binary", "tsv");
  args.add_option("csr",
                  "kernel-3 CSR form: plain (8-byte indices) | compressed "
                  "(delta-varint groups)", "plain");
  args.add_option("fast-path",
                  "src/perf fast paths (radix sort, prefetch, blocked "
                  "SpMV): on | off", "off");
  args.add_option("trace-out",
                  "write a Chrome trace_event JSON trace of the sweep", "");
  args.add_option("json",
                  "also write the series to this JSON file", "");
  if (!args.parse(argc, argv)) return false;
  options.min_scale = static_cast<int>(args.get_int("min-scale"));
  options.max_scale = static_cast<int>(args.get_int("max-scale"));
  options.num_files = static_cast<std::size_t>(args.get_int("files"));
  options.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  options.trials = static_cast<int>(args.get_int("trials"));
  if (args.get_int("repeats") > 0) {
    options.trials = static_cast<int>(args.get_int("repeats"));
  }
  options.csv_path = args.get("csv");
  options.generator = args.get("generator");
  options.source = args.get("source");
  options.input_path = args.get("input");
  if (!options.input_path.empty() && options.source == "generator") {
    options.source = "external";
  }
  if (!args.get("algorithms").empty()) {
    options.algorithms = core::parse_algorithm_list(args.get("algorithms"));
  }
  options.storage = args.get("storage");
  options.stage_format = args.get("stage-format");
  options.csr = args.get("csr");
  util::require(options.csr == "plain" || options.csr == "compressed",
                "--csr must be plain or compressed");
  const std::string fast_path = args.get("fast-path");
  util::require(fast_path == "on" || fast_path == "off",
                "--fast-path must be 'on' or 'off'");
  options.fast_path = fast_path == "on";
  options.trace_out = args.get("trace-out");
  options.json_path = args.get("json");
  util::require(options.trials >= 1, "--trials must be >= 1");
  util::require(options.storage == "dir" || options.storage == "mem",
                "--storage must be dir or mem");
  const std::string list = args.get("backends");
  if (!list.empty()) {
    options.backends.clear();
    std::size_t pos = 0;
    while (pos <= list.size()) {
      const std::size_t comma = list.find(',', pos);
      const std::string item =
          comma == std::string::npos ? list.substr(pos)
                                     : list.substr(pos, comma - pos);
      if (!item.empty()) options.backends.push_back(item);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  return true;
}

/// One figure cell: a kernel measurement for (backend, scale). The cell
/// schema (median + MAD, CPU seconds, disk I/O, counter attribution) and
/// its serialization live in model/trajectory.hpp so the bench emitter,
/// bench_diff, and the tests all share one definition.
using SeriesPoint = model::BenchCell;

/// Serializes sweep cells as the machine-readable kernel benchmark
/// document ({"benchmark": "prpb-kernels", "cells": [...]}) consumed by
/// BENCH_kernels.json readers.
inline std::string kernels_json(const std::vector<SeriesPoint>& points) {
  return model::cells_json(points);
}

/// Triad peak bandwidth for achieved-GB/s normalization. Delegates to the
/// process-wide memoized probe (model::cached_triad_bandwidth), so the
/// harness, model calibrations and tests all share one measurement.
inline double peak_triad_bps() {
  return model::cached_triad_bandwidth();
}

inline void print_series(const std::string& title,
                         const std::vector<SeriesPoint>& points) {
  std::printf("## %s\n\n", title.c_str());
  util::TextTable table({"backend", "scale", "edges", "seconds", "mad",
                         "cpu s", "edges/sec"});
  for (const auto& p : points) {
    table.add_row({p.backend, std::to_string(p.scale),
                   util::human_count(p.edges), util::fixed(p.seconds, 4),
                   util::fixed(p.seconds_mad, 4),
                   util::fixed(p.cpu_seconds, 4),
                   util::sci(p.edges_per_second)});
  }
  std::printf("%s\n", table.str().c_str());
}

/// Builds the standard pipeline config for one sweep cell.
inline core::PipelineConfig cell_config(const util::TempDir& work,
                                        const SweepOptions& options,
                                        int scale) {
  core::PipelineConfig config;
  config.scale = scale;
  config.num_files = options.num_files;
  config.seed = options.seed;
  config.generator = options.generator;
  config.source = options.source;
  config.input_path = options.input_path;
  config.algorithms = options.algorithms;
  config.storage = options.storage;
  config.stage_format = options.stage_format;
  config.csr = options.csr;
  config.fast_path = options.fast_path;
  config.work_dir = work.path();
  return config;
}

/// Runs one kernel for every (backend, scale) sweep cell and returns the
/// figure series. Earlier pipeline stages are prepared untimed with the
/// native backend — legal because every backend produces identical stages
/// (enforced by the integration tests). Kernel-3 cells measure `algorithm`
/// (the paper's fixed PageRank by default). External sources ignore the
/// scale axis: the input file determines the graph, so exactly one pass
/// runs, labeled with min_scale.
///
/// Each cell runs options.trials timings; the reported seconds is the
/// median and seconds_mad the median absolute deviation. CPU seconds,
/// /proc/self/io traffic and hardware-counter attribution come from the
/// trial whose wall time is closest to the median, so every recorded
/// column describes the same run. When `external_recorder` is non-null it
/// replaces the sweep-local recorder (and options.trace_out is ignored) —
/// bench_kernels uses this to collect one trace across many sweeps.
inline std::vector<SeriesPoint> sweep_kernel(
    const SweepOptions& options, int kernel,
    const std::string& algorithm = "pagerank",
    obs::TraceRecorder* external_recorder = nullptr) {
  std::vector<SeriesPoint> points;
  // Tracing is opt-in (--trace-out or an injected recorder); the resource
  // sampler always runs so every cell line can report its peak RSS.
  obs::TraceRecorder local_recorder(external_recorder == nullptr &&
                                    !options.trace_out.empty());
  obs::TraceRecorder& recorder =
      external_recorder != nullptr ? *external_recorder : local_recorder;
  obs::Hooks hooks;
  if (recorder.enabled()) hooks.trace = &recorder;
  // Inert on hosts without perf_event_open — cells then simply carry no
  // counter block (has_perf stays false).
  obs::PerfCounterGroup perf_group;
  hooks.perf = &perf_group;
  obs::ResourceSampler::Options sampler_options;
  if (recorder.enabled()) sampler_options.trace = &recorder;
  obs::ResourceSampler sampler(sampler_options);
  sampler.start();
  for (int scale = options.min_scale; scale <= options.max_scale; ++scale) {
    // Shared untimed preparation per scale.
    util::TempDir work("prpb-fig");
    core::PipelineConfig config = cell_config(work, options, scale);
    const auto store = core::make_stage_store(config);
    const auto context = [&](std::string in, std::string out) {
      core::KernelContext ctx{config, *store, std::move(in),
                              std::move(out), core::stages::kTemp};
      ctx.hooks = hooks;
      return ctx;
    };
    core::NativeBackend prep;
    if (kernel >= 1) {
      if (config.source == "external") {
        const auto graph_source = core::make_graph_source(config);
        const core::GraphSummary graph =
            graph_source->materialize(context("", core::stages::kStage0),
                                      prep);
        config.external_vertices = graph.vertices;
        config.external_edges = graph.edges;
      } else {
        prep.kernel0(context("", core::stages::kStage0));
      }
    }
    if (kernel >= 2)
      prep.kernel1(context(core::stages::kStage0, core::stages::kStage1));
    sparse::CsrMatrix matrix;
    if (kernel >= 3)
      matrix = prep.kernel2(context(core::stages::kStage1, ""));

    for (const auto& name : options.backends) {
      const auto backend = core::make_backend(name);
      struct Trial {
        double wall = 0;
        double cpu = 0;
        std::uint64_t io_read = 0;
        std::uint64_t io_write = 0;
        obs::PerfSample perf;
      };
      std::vector<Trial> trials;
      trials.reserve(options.trials);
      std::uint64_t k3_work = 0;
      sampler.reset_peak();
      obs::Span cell_span(hooks.trace, "bench/cell");
      for (int trial = 0; trial < options.trials; ++trial) {
        const obs::ResourceSample before = obs::ResourceSampler::sample_now();
        const obs::PerfScope perf_scope(&perf_group);
        util::Stopwatch watch;
        switch (kernel) {
          case 0:
            if (config.source == "external") {
              const auto graph_source = core::make_graph_source(config);
              const core::GraphSummary graph =
                  graph_source->materialize(context("", "trial_k0"),
                                            *backend);
              config.external_vertices = graph.vertices;
              config.external_edges = graph.edges;
            } else {
              backend->kernel0(context("", "trial_k0"));
            }
            break;
          case 1:
            backend->kernel1(context(core::stages::kStage0, "trial_k1"));
            break;
          case 2:
            (void)backend->kernel2(context(core::stages::kStage1, ""));
            break;
          case 3: {
            const core::AlgorithmResult out =
                backend->run_algorithm(context("", ""), matrix, algorithm);
            k3_work = out.work_edges;
            break;
          }
          default:
            throw util::ConfigError("sweep_kernel: kernel must be 0-3");
        }
        Trial t;
        t.wall = watch.seconds();
        t.perf = perf_scope.sample();
        const obs::ResourceSample after = obs::ResourceSampler::sample_now();
        t.cpu = std::max(0.0, (after.cpu_user_s + after.cpu_sys_s) -
                                  (before.cpu_user_s + before.cpu_sys_s));
        t.io_read = after.io_read_bytes >= before.io_read_bytes
                        ? after.io_read_bytes - before.io_read_bytes
                        : 0;
        t.io_write = after.io_write_bytes >= before.io_write_bytes
                         ? after.io_write_bytes - before.io_write_bytes
                         : 0;
        trials.push_back(std::move(t));
        store->remove("trial_k0");
        store->remove("trial_k1");
      }
      std::uint64_t processed = config.num_edges();
      if (kernel == 3) processed = k3_work;
      std::vector<double> timings;
      timings.reserve(trials.size());
      for (const Trial& t : trials) timings.push_back(t.wall);
      const double seconds = util::median(timings);
      const double mad = util::median_abs_deviation(timings);
      // CPU/I-O/counter columns come from the trial closest to the median
      // wall time, so the cell's columns all describe one run.
      std::size_t rep = 0;
      for (std::size_t i = 1; i < trials.size(); ++i) {
        if (std::abs(trials[i].wall - seconds) <
            std::abs(trials[rep].wall - seconds)) {
          rep = i;
        }
      }
      const Trial& median_trial = trials[rep];
      // The background thread may not have sampled within a short cell, so
      // fold in one synchronous reading before reporting the peak.
      const std::uint64_t peak_rss =
          std::max(sampler.peak_rss_bytes(),
                   obs::ResourceSampler::sample_now().rss_bytes);
      SeriesPoint point;
      point.kernel = kernel;
      point.backend = name;
      point.scale = scale;
      point.edges = config.num_edges();
      point.seconds = seconds;
      point.seconds_mad = mad;
      point.cpu_seconds = median_trial.cpu;
      point.repeats = options.trials;
      // edges_per_second stays wall-based (and keeps its positive-time
      // clamp); CPU seconds are a separate column, not a denominator.
      point.edges_per_second =
          seconds > 0 ? static_cast<double>(processed) / seconds : 0.0;
      point.peak_rss_bytes = peak_rss;
      point.io_read_bytes = median_trial.io_read;
      point.io_write_bytes = median_trial.io_write;
      point.storage = config.storage;
      point.stage_format = config.stage_format;
      point.fast_path = config.fast_path;
      point.source = config.source;
      if (kernel == 3) {
        point.algorithm = algorithm;
        point.csr = config.csr;
        // Structural bytes per edge of the form the cell iterated —
        // measured, so the compression ratio lands next to the timings.
        if (matrix.nnz() > 0) {
          point.bytes_per_edge =
              config.csr == "compressed"
                  ? static_cast<double>(
                        sparse::CompressedCsrMatrix::encoded_column_bytes(
                            matrix)) /
                        static_cast<double>(matrix.nnz())
                  : 8.0;
        }
      }
      if (median_trial.perf.any()) {
        point.has_perf = true;
        point.cycles = median_trial.perf.get(obs::PerfEvent::kCycles);
        point.instructions =
            median_trial.perf.get(obs::PerfEvent::kInstructions);
        point.llc_misses =
            median_trial.perf.get(obs::PerfEvent::kLlcMisses);
        point.ipc = median_trial.perf.ipc();
        point.llc_miss_rate = median_trial.perf.llc_miss_rate();
        point.dram_gbps = median_trial.perf.dram_gbps(median_trial.wall);
        const double triad = peak_triad_bps();
        point.peak_bandwidth_fraction =
            triad > 0 ? point.dram_gbps * 1e9 / triad : 0.0;
      }
      if (cell_span.active()) {
        util::JsonWriter args;
        args.begin_object();
        args.field("kernel", static_cast<std::int64_t>(kernel));
        args.field("backend", name);
        args.field("scale", static_cast<std::int64_t>(scale));
        median_trial.perf.write_fields(args, median_trial.wall);
        args.end_object();
        cell_span.set_args(args.str());
      }
      cell_span.finish();
      points.push_back(std::move(point));
      std::fprintf(stderr,
                   "  [fig] kernel%d%s%s %s scale %d: %.3fs ±%.4f "
                   "(cpu %.3fs, peak RSS %.1f MB%s)\n",
                   kernel, kernel == 3 ? "/" : "",
                   kernel == 3 ? algorithm.c_str() : "", name.c_str(), scale,
                   seconds, mad, median_trial.cpu,
                   static_cast<double>(peak_rss) / (1024.0 * 1024.0),
                   median_trial.perf.any() ? ", counters on" : "");
    }
    // The input file fixes the graph; more scales would repeat the cell.
    if (config.source == "external") break;
  }
  sampler.stop();
  if (external_recorder == nullptr && !options.trace_out.empty()) {
    recorder.write_chrome_trace(options.trace_out);
    std::fprintf(stderr, "  [fig] trace written to %s (%zu events)\n",
                 options.trace_out.c_str(), recorder.event_count());
  }
  if (!options.csv_path.empty()) {
    std::string csv = "backend,scale,edges,seconds,edges_per_second\n";
    for (const auto& p : points) {
      csv += p.backend + "," + std::to_string(p.scale) + "," +
             std::to_string(p.edges) + "," + util::fixed(p.seconds, 6) +
             "," + util::sci(p.edges_per_second) + "\n";
    }
    io::write_file(options.csv_path, csv);
  }
  if (!options.json_path.empty()) {
    io::write_file(options.json_path, kernels_json(points) + "\n");
  }
  return points;
}

}  // namespace prpb::bench
