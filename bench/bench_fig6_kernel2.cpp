// Figure 6 — kernel 2 (filter): edges/sec vs number of edges per stack.
// Timed work: read the sorted stage, build the sparse count matrix, zero
// super-node/leaf columns, normalize rows ("combined impacts from I/O and
// memory limitations", per the paper).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  prpb::bench::SweepOptions options;
  if (!prpb::bench::parse_sweep_options(
          argc, argv, "bench_fig6_kernel2",
          "Figure 6: kernel 2 filter rates per stack", options)) {
    return 0;
  }
  const auto points = prpb::bench::sweep_kernel(options, 2);
  prpb::bench::print_series(
      "Figure 6 — Kernel 2 (construct, filter, normalize adjacency matrix)",
      points);
  return 0;
}
