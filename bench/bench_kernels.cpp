// Machine-readable per-kernel benchmark: every cell of
// {kernel 0-3} x {backend} x {fast-path off|on} at each sweep scale, with
// edges/sec, median seconds, and peak RSS, written as one JSON document
// (BENCH_kernels.json). The I/O-bound kernels 0-2 are additionally swept
// over {stage_format tsv|binary} x {storage dir|mem} so the document
// carries the codec and store ablation; kernel 3 runs on the CLI-selected
// combo only, since the compute kernel's cost does not depend on stage
// encoding — instead it is swept over {csr plain|compressed} so the
// document carries the index-compression ablation (bytes_per_edge per
// cell). This is the artifact CI and the ablation docs consume; the
// human-readable figure benches (bench_fig4..7) stay the per-kernel
// narrative views.
//
//   bench_kernels --min-scale 16 --max-scale 16
//       --backends native,parallel --json BENCH_kernels.json
//
// --fast-path is ignored here: both settings are always measured, since
// the off/on delta is the point of the document.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace prpb;

  bench::SweepOptions options;
  options.backends = {"native", "parallel"};
  options.algorithms = core::algorithm_names();
  if (!bench::parse_sweep_options(
          argc, argv, "bench_kernels",
          "all kernels x backends x fast-path (x algorithm for kernel 3), "
          "as JSON", options)) {
    return 0;
  }
  if (options.json_path.empty()) options.json_path = "BENCH_kernels.json";

  try {
    // One recorder spans every sweep so --trace-out captures the whole
    // grid (per-sweep recorders would each overwrite the file).
    obs::TraceRecorder recorder(!options.trace_out.empty());
    obs::TraceRecorder* trace =
        recorder.enabled() ? &recorder : nullptr;
    std::vector<bench::SeriesPoint> cells;
    for (const bool fast : {false, true}) {
      bench::SweepOptions cell_options = options;
      cell_options.fast_path = fast;
      cell_options.csv_path.clear();
      cell_options.json_path.clear();
      cell_options.trace_out.clear();
      struct Combo {
        const char* format;
        const char* storage;
      };
      static constexpr Combo kCombos[] = {
          {"tsv", "dir"}, {"binary", "dir"}, {"tsv", "mem"}, {"binary", "mem"}};
      for (const auto& combo : kCombos) {
        cell_options.stage_format = combo.format;
        cell_options.storage = combo.storage;
        for (int kernel = 0; kernel <= 2; ++kernel) {
          std::fprintf(stderr,
                       "[bench_kernels] kernel %d, %s/%s, fast-path %s\n",
                       kernel, combo.format, combo.storage,
                       fast ? "on" : "off");
          const auto points =
              bench::sweep_kernel(cell_options, kernel, "pagerank", trace);
          cells.insert(cells.end(), points.begin(), points.end());
        }
      }
      cell_options.stage_format = options.stage_format;
      cell_options.storage = options.storage;
      // Kernel 3 sweeps the CSR form too — the compressed delta-varint
      // layout's bytes/edge and time land next to the plain cells so the
      // document carries the index-traffic ablation.
      for (const char* csr : {"plain", "compressed"}) {
        cell_options.csr = csr;
        for (const auto& algorithm : cell_options.algorithms) {
          std::fprintf(stderr,
                       "[bench_kernels] kernel 3/%s, csr %s, fast-path %s\n",
                       algorithm.c_str(), csr, fast ? "on" : "off");
          const auto points =
              bench::sweep_kernel(cell_options, 3, algorithm, trace);
          cells.insert(cells.end(), points.begin(), points.end());
        }
      }
    }

    io::write_file(options.json_path, bench::kernels_json(cells) + "\n");
    std::printf("wrote %zu cells to %s\n", cells.size(),
                options.json_path.c_str());
    if (trace != nullptr) {
      trace->write_chrome_trace(options.trace_out);
      std::printf("wrote %zu trace events to %s\n", trace->event_count(),
                  options.trace_out.c_str());
    }

    bench::print_series("kernel cells (fast-path off, then on)", cells);
  } catch (const util::Error& e) {
    std::fprintf(stderr, "bench_kernels: error: %s\n", e.what());
    return 1;
  }
  return 0;
}
