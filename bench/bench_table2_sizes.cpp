// Table II — benchmark run sizes: scale -> max vertices, max edges, memory
// footprint at 16 bytes/edge. The table is recomputed from the formulae
// (N = 2^S, M = 16N) and cross-checked against the live generator and a
// real kernel-0 stage at a small scale.
#include <cstdio>

#include "core/config.hpp"
#include "gen/generator.hpp"
#include "io/edge_files.hpp"
#include "util/format.hpp"
#include "util/fs.hpp"

int main() {
  using namespace prpb;

  std::printf("Table II — benchmark run sizes\n\n");
  util::TextTable table({"Scale", "Max Vertices", "Max Edges", "~Memory"});
  for (int scale = 16; scale <= 22; ++scale) {
    const core::RunSize size = core::run_size(scale);
    table.add_row({std::to_string(scale),
                   util::human_count(size.max_vertices),
                   util::human_count(size.max_edges),
                   util::human_bytes(size.memory_bytes)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("(paper: 65K/1M/25MB at scale 16 up to 4M/67M/1.6GB at "
              "scale 22;\n our ~Memory column counts the raw 16-byte edge "
              "structs)\n\n");

  // Live cross-check: the generator and an on-disk stage must agree with
  // the formulae.
  bool ok = true;
  for (int scale = 8; scale <= 12; scale += 2) {
    const auto generator =
        gen::make_generator("kronecker", scale, 16, 20160205);
    const core::RunSize size = core::run_size(scale);
    const bool counts_ok = generator->num_vertices() == size.max_vertices &&
                           generator->num_edges() == size.max_edges;
    util::TempDir dir("prpb-table2");
    io::write_generated_edges(*generator, dir.path(), 2, io::Codec::kFast);
    const bool stage_ok =
        io::count_edges(dir.path()) == size.max_edges;
    std::printf("scale %d live check: generator %s, stage %s\n", scale,
                counts_ok ? "OK" : "MISMATCH",
                stage_ok ? "OK" : "MISMATCH");
    ok = ok && counts_ok && stage_ok;
  }
  return ok ? 0 : 1;
}
