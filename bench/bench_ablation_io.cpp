// Ablation: edge-file codec and shard-count choices (google-benchmark).
// Quantifies the fast-vs-generic TSV codec gap that separates the native
// and interpreted stacks in Figures 4-6, and the effect of the "number of
// files is a free parameter" knob.
#include <benchmark/benchmark.h>

#include <memory>

#include "gen/kronecker.hpp"
#include "io/edge_files.hpp"
#include "io/mmap_file.hpp"
#include "io/prefetch.hpp"
#include "io/stage_codec.hpp"
#include "io/stage_store.hpp"
#include "io/tsv.hpp"
#include "perf/radix_partition.hpp"
#include "sort/edge_sort.hpp"
#include "util/fs.hpp"
#include "util/threadpool.hpp"

namespace {

using namespace prpb;

gen::EdgeList sample_edges() {
  gen::KroneckerParams params;
  params.scale = 14;
  return gen::KroneckerGenerator(params).generate_all();
}

void BM_FormatEdges(benchmark::State& state) {
  const gen::EdgeList edges = sample_edges();
  const auto codec = static_cast<io::Codec>(state.range(0));
  for (auto _ : state) {
    std::string out;
    out.reserve(edges.size() * 16);
    for (const auto& edge : edges) io::append_edge(out, edge, codec);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(edges.size()) *
                          state.iterations());
}

void BM_ParseEdges(benchmark::State& state) {
  const gen::EdgeList edges = sample_edges();
  const auto codec = static_cast<io::Codec>(state.range(0));
  std::string text;
  for (const auto& edge : edges) io::append_edge_fast(text, edge);
  for (auto _ : state) {
    gen::EdgeList parsed;
    parsed.reserve(edges.size());
    io::parse_edges(text, parsed, codec);
    benchmark::DoNotOptimize(parsed.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(edges.size()) *
                          state.iterations());
}

void BM_WriteStageSharded(benchmark::State& state) {
  gen::KroneckerParams params;
  params.scale = 14;
  const gen::KroneckerGenerator generator(params);
  util::TempDir dir("prpb-bench-io");
  const auto shards = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    io::write_generated_edges(generator, dir.path(), shards,
                              io::Codec::kFast);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(generator.num_edges()) *
                          state.iterations());
}

void BM_ReadStageSharded(benchmark::State& state) {
  gen::KroneckerParams params;
  params.scale = 14;
  const gen::KroneckerGenerator generator(params);
  util::TempDir dir("prpb-bench-io");
  const auto shards = static_cast<std::size_t>(state.range(0));
  io::write_generated_edges(generator, dir.path(), shards, io::Codec::kFast);
  for (auto _ : state) {
    const auto edges = io::read_all_edges(dir.path(), io::Codec::kFast);
    benchmark::DoNotOptimize(edges.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(generator.num_edges()) *
                          state.iterations());
}

BENCHMARK(BM_FormatEdges)
    ->Arg(static_cast<int>(io::Codec::kFast))
    ->Arg(static_cast<int>(io::Codec::kGeneric))
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParseEdges)
    ->Arg(static_cast<int>(io::Codec::kFast))
    ->Arg(static_cast<int>(io::Codec::kGeneric))
    ->Unit(benchmark::kMillisecond);
void BM_ReadStageMmap(benchmark::State& state) {
  gen::KroneckerParams params;
  params.scale = 14;
  const gen::KroneckerGenerator generator(params);
  util::TempDir dir("prpb-bench-io");
  const auto shards = static_cast<std::size_t>(state.range(0));
  io::write_generated_edges(generator, dir.path(), shards, io::Codec::kFast);
  // Same read path as BM_ReadStageSharded with the mapped view forced on,
  // so the delta between the two is the mmap-vs-buffered-drain effect.
  const io::MmapPolicy prior = io::set_mmap_policy(io::MmapPolicy::kOn);
  for (auto _ : state) {
    const auto edges = io::read_all_edges(dir.path(), io::Codec::kFast);
    benchmark::DoNotOptimize(edges.data());
  }
  io::set_mmap_policy(prior);
  state.SetItemsProcessed(static_cast<std::int64_t>(generator.num_edges()) *
                          state.iterations());
}

BENCHMARK(BM_WriteStageSharded)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReadStageSharded)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReadStageMmap)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// ---- storage ablation: dir vs mem stage stores ------------------------------
// Arg 0 selects the store (0 = dir, 1 = mem), arg 1 the shard count — the
// same write/read paths run_pipeline drives, so the gap is the filesystem
// tax isolated from codec and sharding effects.

std::unique_ptr<io::StageStore> make_store(int kind,
                                           const util::TempDir& dir) {
  if (kind == 1) return std::make_unique<io::MemStageStore>();
  return std::make_unique<io::DirStageStore>(dir.path());
}

void BM_WriteStageStore(benchmark::State& state) {
  gen::KroneckerParams params;
  params.scale = 14;
  const gen::KroneckerGenerator generator(params);
  util::TempDir dir("prpb-bench-store");
  const auto store = make_store(static_cast<int>(state.range(0)), dir);
  const auto shards = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    io::write_generated_edges(*store, "k0_edges", generator, shards,
                              io::Codec::kFast);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(generator.num_edges()) *
                          state.iterations());
  state.SetLabel(store->kind());
}

void BM_ReadStageStore(benchmark::State& state) {
  gen::KroneckerParams params;
  params.scale = 14;
  const gen::KroneckerGenerator generator(params);
  util::TempDir dir("prpb-bench-store");
  const auto store = make_store(static_cast<int>(state.range(0)), dir);
  const auto shards = static_cast<std::size_t>(state.range(1));
  io::write_generated_edges(*store, "k0_edges", generator, shards,
                            io::Codec::kFast);
  for (auto _ : state) {
    const auto edges =
        io::read_all_edges(*store, "k0_edges", io::Codec::kFast);
    benchmark::DoNotOptimize(edges.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(generator.num_edges()) *
                          state.iterations());
  state.SetLabel(store->kind());
}

BENCHMARK(BM_WriteStageStore)
    ->Args({0, 4})->Args({1, 4})->Args({0, 16})->Args({1, 16})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReadStageStore)
    ->Args({0, 4})->Args({1, 4})->Args({0, 16})->Args({1, 16})
    ->Unit(benchmark::kMillisecond);

// ---- stage-format ablation: storage x codec ---------------------------------
// Arg 0 selects the store (0 = dir, 1 = mem), arg 1 the codec (0 = tsv,
// 1 = binary), arg 2 the scale. The store is wrapped in a
// CountingStageStore so every cell reports the bytes it actually moved
// ("bytes_written"/"bytes_read" counters) alongside edges/s — the numbers
// behind the "what if stages were not text" ablation.

const io::StageCodec& pick_codec(int kind) {
  return kind == 1 ? io::binary_codec() : io::tsv_codec(io::Codec::kFast);
}

std::string cell_label(const io::StageStore& store,
                       const io::StageCodec& codec) {
  return store.kind() + "/" + codec.name();
}

void BM_WriteStageCodec(benchmark::State& state) {
  gen::KroneckerParams params;
  params.scale = static_cast<int>(state.range(2));
  const gen::KroneckerGenerator generator(params);
  util::TempDir dir("prpb-bench-codec");
  const auto inner = make_store(static_cast<int>(state.range(0)), dir);
  io::CountingStageStore store(*inner);
  const io::StageCodec& codec = pick_codec(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    io::write_generated_edges(store, "k0_edges", generator, 4, codec);
  }
  const io::StageIoCounters counters = store.snapshot();
  state.SetItemsProcessed(static_cast<std::int64_t>(generator.num_edges()) *
                          state.iterations());
  state.counters["bytes_written"] = benchmark::Counter(
      static_cast<double>(counters.bytes_written) /
      static_cast<double>(state.iterations()));
  state.SetLabel(cell_label(*inner, codec));
}

void BM_ReadStageCodec(benchmark::State& state) {
  gen::KroneckerParams params;
  params.scale = static_cast<int>(state.range(2));
  const gen::KroneckerGenerator generator(params);
  util::TempDir dir("prpb-bench-codec");
  const auto inner = make_store(static_cast<int>(state.range(0)), dir);
  io::CountingStageStore store(*inner);
  const io::StageCodec& codec = pick_codec(static_cast<int>(state.range(1)));
  io::write_generated_edges(store, "k0_edges", generator, 4, codec);
  const io::StageIoCounters before = store.snapshot();
  for (auto _ : state) {
    const auto edges = io::read_all_edges(store, "k0_edges", codec);
    benchmark::DoNotOptimize(edges.data());
  }
  const io::StageIoCounters delta = store.snapshot() - before;
  state.SetItemsProcessed(static_cast<std::int64_t>(generator.num_edges()) *
                          state.iterations());
  state.counters["bytes_read"] = benchmark::Counter(
      static_cast<double>(delta.bytes_read) /
      static_cast<double>(state.iterations()));
  state.SetLabel(cell_label(*inner, codec));
}

// The K1-shaped roundtrip the tentpole targets: read the stage, sort it,
// write it back — the bytes-moved delta between tsv and binary cells is
// the stage-format ablation headline.
void BM_SortRoundTripCodec(benchmark::State& state) {
  gen::KroneckerParams params;
  params.scale = static_cast<int>(state.range(2));
  const gen::KroneckerGenerator generator(params);
  util::TempDir dir("prpb-bench-codec");
  const auto inner = make_store(static_cast<int>(state.range(0)), dir);
  io::CountingStageStore store(*inner);
  const io::StageCodec& codec = pick_codec(static_cast<int>(state.range(1)));
  io::write_generated_edges(store, "k0_edges", generator, 4, codec);
  const io::StageIoCounters before = store.snapshot();
  for (auto _ : state) {
    auto edges = io::read_all_edges(store, "k0_edges", codec);
    sort::radix_sort(edges);
    io::write_edge_list(store, "k1_sorted", edges, 4, codec);
    benchmark::DoNotOptimize(edges.data());
  }
  const io::StageIoCounters delta = store.snapshot() - before;
  state.SetItemsProcessed(static_cast<std::int64_t>(generator.num_edges()) *
                          state.iterations());
  state.counters["bytes_read"] = benchmark::Counter(
      static_cast<double>(delta.bytes_read) /
      static_cast<double>(state.iterations()));
  state.counters["bytes_written"] = benchmark::Counter(
      static_cast<double>(delta.bytes_written) /
      static_cast<double>(state.iterations()));
  state.SetLabel(cell_label(*inner, codec));
}

// Fast-path counterpart of BM_ReadStageCodec: the same stage read through
// the double-buffered prefetcher, so the cell delta is the decode overlap.
void BM_ReadStagePrefetched(benchmark::State& state) {
  gen::KroneckerParams params;
  params.scale = static_cast<int>(state.range(2));
  const gen::KroneckerGenerator generator(params);
  util::TempDir dir("prpb-bench-codec");
  const auto inner = make_store(static_cast<int>(state.range(0)), dir);
  io::CountingStageStore store(*inner);
  const io::StageCodec& codec = pick_codec(static_cast<int>(state.range(1)));
  io::write_generated_edges(store, "k0_edges", generator, 4, codec);
  for (auto _ : state) {
    const auto edges = io::read_all_edges_prefetched(store, "k0_edges", codec);
    benchmark::DoNotOptimize(edges.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(generator.num_edges()) *
                          state.iterations());
  state.SetLabel(cell_label(*inner, codec));
}

// Fast-path counterpart of BM_SortRoundTripCodec: prefetched read + the
// parallel radix partition instead of the serial read + serial radix sort —
// the K1 fast path end to end.
void BM_SortRoundTripFast(benchmark::State& state) {
  gen::KroneckerParams params;
  params.scale = static_cast<int>(state.range(2));
  const gen::KroneckerGenerator generator(params);
  util::TempDir dir("prpb-bench-codec");
  const auto inner = make_store(static_cast<int>(state.range(0)), dir);
  io::CountingStageStore store(*inner);
  const io::StageCodec& codec = pick_codec(static_cast<int>(state.range(1)));
  io::write_generated_edges(store, "k0_edges", generator, 4, codec);
  util::ThreadPool pool;
  for (auto _ : state) {
    auto edges = io::read_all_edges_prefetched(store, "k0_edges", codec);
    perf::radix_partition_sort(edges, pool);
    io::write_edge_list(store, "k1_sorted", edges, 4, codec);
    benchmark::DoNotOptimize(edges.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(generator.num_edges()) *
                          state.iterations());
  state.SetLabel(cell_label(*inner, codec));
}

#define PRPB_CODEC_CELLS(scale)                                       \
  Args({0, 0, (scale)})->Args({0, 1, (scale)})->Args({1, 0, (scale)}) \
      ->Args({1, 1, (scale)})

BENCHMARK(BM_WriteStageCodec)
    ->PRPB_CODEC_CELLS(14)->PRPB_CODEC_CELLS(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReadStageCodec)
    ->PRPB_CODEC_CELLS(14)->PRPB_CODEC_CELLS(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReadStagePrefetched)
    ->PRPB_CODEC_CELLS(14)->PRPB_CODEC_CELLS(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SortRoundTripCodec)
    ->PRPB_CODEC_CELLS(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SortRoundTripFast)
    ->PRPB_CODEC_CELLS(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
