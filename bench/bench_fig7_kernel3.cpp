// Figure 7 — kernel 3 (PageRank): edges/sec vs number of edges per stack,
// 20 iterations, metric 20·M / time. The paper's qualitative finding to
// reproduce: "minimal dispersion among the performance measurements in
// Kernel 3 for each of the languages" — every stack funnels into the same
// vectorized SpMV.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  prpb::bench::SweepOptions options;
  if (!prpb::bench::parse_sweep_options(
          argc, argv, "bench_fig7_kernel3",
          "Figure 7: kernel 3 PageRank rates per stack", options)) {
    return 0;
  }
  const auto points = prpb::bench::sweep_kernel(options, 3);
  prpb::bench::print_series(
      "Figure 7 — Kernel 3 (20 PageRank iterations, rate = 20M/t)", points);

  // Dispersion check per scale: max/min rate across stacks.
  std::printf("dispersion across stacks (max rate / min rate per scale):\n");
  for (int scale = options.min_scale; scale <= options.max_scale; ++scale) {
    double lo = 0.0, hi = 0.0;
    for (const auto& p : points) {
      if (p.scale != scale) continue;
      if (lo == 0.0 || p.edges_per_second < lo) lo = p.edges_per_second;
      if (p.edges_per_second > hi) hi = p.edges_per_second;
    }
    if (lo > 0.0) {
      std::printf("  scale %d: %.2fx  (paper: minimal dispersion)\n", scale,
                  hi / lo);
    }
  }
  return 0;
}
