// Ablation: kernel 1 sorting engine choice (google-benchmark).
// Compares std::stable_sort, LSD radix, parallel merge, and the external
// merge sort across scales — the design decision behind the paper's "the
// type of sorting algorithm may depend upon the scale parameter".
#include <benchmark/benchmark.h>

#include "gen/kronecker.hpp"
#include "io/edge_files.hpp"
#include "sort/edge_sort.hpp"
#include "sort/external_sort.hpp"
#include "util/fs.hpp"

namespace {

using namespace prpb;

gen::EdgeList edges_at_scale(int scale) {
  gen::KroneckerParams params;
  params.scale = scale;
  return gen::KroneckerGenerator(params).generate_all();
}

void BM_SortStd(benchmark::State& state) {
  const gen::EdgeList edges = edges_at_scale(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    gen::EdgeList copy = edges;
    sort::sort_edges(copy, sort::InMemoryAlgo::kStd);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(edges.size()) *
                          state.iterations());
}

void BM_SortRadix(benchmark::State& state) {
  const gen::EdgeList edges = edges_at_scale(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    gen::EdgeList copy = edges;
    sort::radix_sort(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(edges.size()) *
                          state.iterations());
}

void BM_SortParallelMerge(benchmark::State& state) {
  const gen::EdgeList edges = edges_at_scale(static_cast<int>(state.range(0)));
  util::ThreadPool pool;
  for (auto _ : state) {
    gen::EdgeList copy = edges;
    sort::parallel_merge_sort(copy, pool);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(edges.size()) *
                          state.iterations());
}

void BM_SortExternal(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  gen::KroneckerParams params;
  params.scale = scale;
  const gen::KroneckerGenerator generator(params);
  util::TempDir work("prpb-bench-ext");
  const auto in_dir = work.sub("in");
  io::write_generated_edges(generator, in_dir, 2, io::Codec::kFast);
  for (auto _ : state) {
    sort::ExternalSortConfig config;
    config.memory_budget_bytes = 1 << 20;  // force multiple runs
    sort::external_sort_stage(in_dir, work.sub("out"), work.sub("tmp"),
                              config);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(generator.num_edges()) *
                          state.iterations());
}

BENCHMARK(BM_SortStd)->Arg(12)->Arg(14)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SortRadix)->Arg(12)->Arg(14)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SortParallelMerge)->Arg(12)->Arg(14)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SortExternal)->Arg(12)->Arg(14)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
