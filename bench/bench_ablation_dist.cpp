// Ablation: simulated processor-count scaling of the distributed pipeline.
// Measures wall time and communication volume per rank count, checking the
// communication-volume model the paper sketches for the parallel kernels
// (kernel 3's allreduce term grows linearly in P).
#include <cstdio>

#include "dist/pipeline.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace prpb;

  util::ArgParser args("bench_ablation_dist",
                       "distributed pipeline scaling + comm volume");
  args.add_option("scale", "graph scale", "14");
  args.add_option("max-ranks", "largest simulated processor count", "8");
  if (!args.parse(argc, argv)) return 0;

  dist::DistConfig config;
  config.scale = static_cast<int>(args.get_int("scale"));
  const auto max_ranks = static_cast<std::size_t>(args.get_int("max-ranks"));

  std::printf("distributed pipeline scaling, scale %d\n\n", config.scale);
  util::TextTable table({"ranks", "seconds", "K1 exchange", "K3 allreduce",
                         "K3 model", "model ok"});
  for (std::size_t p = 1; p <= max_ranks; p *= 2) {
    util::Stopwatch watch;
    const dist::DistResult result = dist::run_distributed(config, p);
    const double seconds = watch.seconds();
    const std::uint64_t k3_model =
        static_cast<std::uint64_t>(config.iterations) * p *
        config.num_vertices() * sizeof(double);
    table.add_row({std::to_string(p), util::fixed(seconds, 3),
                   util::human_bytes(result.k1_exchange_bytes),
                   util::human_bytes(result.k3_allreduce_bytes),
                   util::human_bytes(k3_model),
                   result.k3_allreduce_bytes == k3_model ? "YES" : "NO"});
  }
  std::printf("%s", table.str().c_str());
  return 0;
}
