// Figure 5 — kernel 1 (sort): edges/sec vs number of edges per stack.
// Timed work: read the kernel-0 stage, sort by start vertex, rewrite.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  prpb::bench::SweepOptions options;
  if (!prpb::bench::parse_sweep_options(
          argc, argv, "bench_fig5_kernel1",
          "Figure 5: kernel 1 sort rates per stack", options)) {
    return 0;
  }
  const auto points = prpb::bench::sweep_kernel(options, 1);
  prpb::bench::print_series(
      "Figure 5 — Kernel 1 (read, sort by start vertex, write)", points);
  return 0;
}
