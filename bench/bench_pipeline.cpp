// Full pipeline benchmark (paper §IV): runs kernels 0-3 back-to-back for
// each stack at one scale, printing the paper's per-kernel metrics plus the
// end-to-end wall time. The pipeline barrier semantics (each kernel fully
// completes before the next begins) come from core::run_pipeline.
#include <cstdio>

#include "core/backend.hpp"
#include "core/runner.hpp"
#include "core/validate.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/fs.hpp"

int main(int argc, char** argv) {
  using namespace prpb;

  util::ArgParser args("bench_pipeline",
                       "full four-kernel pipeline per stack");
  args.add_option("scale", "graph scale", "16");
  args.add_option("files", "shard files per stage", "4");
  args.add_option("backends", "comma-separated backends (default all)", "");
  args.add_option("storage", "stage store: dir (disk) | mem (in-memory)",
                  "dir");
  if (!args.parse(argc, argv)) return 0;

  std::vector<std::string> backends = core::backend_names();
  if (!args.get("backends").empty()) {
    backends.clear();
    const std::string list = args.get("backends");
    std::size_t pos = 0;
    while (pos <= list.size()) {
      const std::size_t comma = list.find(',', pos);
      backends.push_back(comma == std::string::npos
                             ? list.substr(pos)
                             : list.substr(pos, comma - pos));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  const int scale = static_cast<int>(args.get_int("scale"));
  const std::string storage = args.get("storage");
  std::printf("Full pipeline at scale %d (N = %s, M = %s, storage %s)\n\n",
              scale, util::human_count(1ULL << scale).c_str(),
              util::human_count(16ULL << scale).c_str(), storage.c_str());

  util::TextTable table({"backend", "K0 e/s", "K1 e/s", "K2 e/s",
                         "K3 e/s", "total s", "MB written", "MB read"});
  for (const auto& name : backends) {
    util::TempDir work("prpb-pipeline");
    core::PipelineConfig config;
    config.scale = scale;
    config.num_files = static_cast<std::size_t>(args.get_int("files"));
    config.storage = storage;
    config.work_dir = work.path();
    const auto backend = core::make_backend(name);
    const auto result = core::run_pipeline(config, *backend);
    const double written =
        static_cast<double>(result.k0.bytes_written + result.k1.bytes_written +
                            result.k2.bytes_written +
                            result.k3.bytes_written) /
        (1024.0 * 1024.0);
    const double read =
        static_cast<double>(result.k0.bytes_read + result.k1.bytes_read +
                            result.k2.bytes_read + result.k3.bytes_read) /
        (1024.0 * 1024.0);
    table.add_row({name, util::sci(result.k0.edges_per_second()),
                   util::sci(result.k1.edges_per_second()),
                   util::sci(result.k2.edges_per_second()),
                   util::sci(result.k3.edges_per_second()),
                   util::fixed(result.k0.seconds + result.k1.seconds +
                                   result.k2.seconds + result.k3.seconds,
                               3),
                   util::fixed(written, 1), util::fixed(read, 1)});
    std::fprintf(stderr, "  [pipeline] %s done\n", name.c_str());
  }
  std::printf("%s", table.str().c_str());
  return 0;
}
