// Ablation: kernel 3's SpMV formulation (google-benchmark).
// r·A via row-major CSR traversal (native), via the transposed matrix with
// output partitioning (parallel backend's formulation), via grb::vxm with
// the plus-times semiring, and the full 20-iteration kernel.
#include <benchmark/benchmark.h>

#include "gen/kronecker.hpp"
#include "grb/ops.hpp"
#include "sparse/filter.hpp"
#include "sparse/pagerank.hpp"

namespace {

using namespace prpb;

sparse::CsrMatrix matrix_at_scale(int scale) {
  gen::KroneckerParams params;
  params.scale = scale;
  const auto edges = gen::KroneckerGenerator(params).generate_all();
  return sparse::filter_edges(edges, 1ULL << scale);
}

void BM_SpmvCsrRowMajor(benchmark::State& state) {
  const auto a = matrix_at_scale(static_cast<int>(state.range(0)));
  const auto r = sparse::pagerank_initial_vector(a.rows(), 1);
  std::vector<double> y;
  for (auto _ : state) {
    a.vec_mat(r, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(a.nnz()) *
                          state.iterations());
}

void BM_SpmvTransposed(benchmark::State& state) {
  const auto a = matrix_at_scale(static_cast<int>(state.range(0)));
  const auto at = a.transpose();
  const auto r = sparse::pagerank_initial_vector(a.rows(), 1);
  std::vector<double> y(a.cols());
  for (auto _ : state) {
    for (std::uint64_t j = 0; j < at.rows(); ++j) {
      double acc = 0.0;
      for (std::uint64_t k = at.row_ptr()[j]; k < at.row_ptr()[j + 1]; ++k)
        acc += at.values()[k] * r[at.col_idx()[k]];
      y[j] = acc;
    }
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(a.nnz()) *
                          state.iterations());
}

void BM_SpmvGrbVxm(benchmark::State& state) {
  const grb::Matrix a{matrix_at_scale(static_cast<int>(state.range(0)))};
  const grb::Vector r{sparse::pagerank_initial_vector(a.nrows(), 1)};
  for (auto _ : state) {
    grb::Vector y = grb::vxm(r, a);
    benchmark::DoNotOptimize(&y);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(a.nvals()) *
                          state.iterations());
}

void BM_PageRank20Iterations(benchmark::State& state) {
  const auto a = matrix_at_scale(static_cast<int>(state.range(0)));
  sparse::PageRankConfig config;
  for (auto _ : state) {
    const auto r = sparse::pagerank(a, config);
    benchmark::DoNotOptimize(r.data());
  }
  state.SetItemsProcessed(20 * static_cast<std::int64_t>(a.nnz()) *
                          state.iterations());
}

BENCHMARK(BM_SpmvCsrRowMajor)->Arg(12)->Arg(14)->Arg(16);
BENCHMARK(BM_SpmvTransposed)->Arg(12)->Arg(14)->Arg(16);
BENCHMARK(BM_SpmvGrbVxm)->Arg(12)->Arg(14)->Arg(16);
BENCHMARK(BM_PageRank20Iterations)->Arg(12)->Arg(14)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
