// Table I — source lines of code per implementation stack.
//
// The paper counts the serial benchmark implementations: C++ 494 lines,
// Python/Julia 162, Matlab/Octave 102. This repo's analogue is "the kernel
// code a user of each stack writes": the tuned C++ path spells out parsing,
// sorting, and sparse construction by hand, while the interpreted stack's
// four kernel programs are Matlab-sized. Counts are non-blank, non-comment
// lines, measured from the source tree at PRPB_SOURCE_DIR.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/backend_arraylang.hpp"
#include "io/file_stream.hpp"
#include "util/format.hpp"

#ifndef PRPB_SOURCE_DIR
#error "PRPB_SOURCE_DIR must be defined by the build"
#endif

namespace {

using prpb::core::ArrayLangBackend;

/// Counts non-blank lines that are not pure comments ('//', '%').
std::size_t sloc_of_text(const std::string& text) {
  std::size_t count = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line(text.data() + pos,
                                (eol == std::string::npos ? text.size()
                                                          : eol) -
                                    pos);
    std::size_t i = 0;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    const std::string_view body = line.substr(i);
    const bool blank = body.empty();
    const bool comment = body.starts_with("//") || body.starts_with("%") ||
                         body.starts_with("*") || body.starts_with("/*");
    if (!blank && !comment) ++count;
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  return count;
}

std::size_t sloc_of_files(const std::vector<std::string>& relative_paths) {
  const std::filesystem::path root = PRPB_SOURCE_DIR;
  std::size_t total = 0;
  for (const auto& rel : relative_paths) {
    total += sloc_of_text(prpb::io::read_file(root / rel));
  }
  return total;
}

}  // namespace

int main() {
  std::printf("Table I — source lines of code per implementation stack\n");
  std::printf("(paper: C++ 494, Python 162, Python w/Pandas 162, Matlab "
              "102, Octave 102, Julia 162)\n\n");

  // The tuned C++ path: everything the native backend spells out by hand.
  const std::size_t native_sloc = sloc_of_files({
      "src/core/backend_native.cpp",
      "src/io/tsv.cpp",
      "src/sort/edge_sort.cpp",
      "src/sparse/csr.cpp",
      "src/sparse/filter.cpp",
      "src/sparse/pagerank.cpp",
  });
  const std::size_t parallel_sloc = sloc_of_files({
      "src/core/backend_parallel.cpp",
      "src/io/tsv.cpp",
      "src/sort/edge_sort.cpp",
      "src/sparse/csr.cpp",
      "src/sparse/filter.cpp",
      "src/sparse/pagerank.cpp",
  });
  const std::size_t graphblas_sloc = sloc_of_files({
      "src/core/backend_graphblas.cpp",
  });
  const std::size_t dataframe_sloc = sloc_of_files({
      "src/core/backend_dataframe.cpp",
  });
  // The interpreted stack: the four kernel programs themselves — the
  // direct analogue of the paper's 102-line Matlab implementation.
  const std::size_t arraylang_sloc =
      sloc_of_text(ArrayLangBackend::kernel0_source()) +
      sloc_of_text(ArrayLangBackend::kernel1_source()) +
      sloc_of_text(ArrayLangBackend::kernel2_source()) +
      sloc_of_text(ArrayLangBackend::kernel3_source());

  prpb::util::TextTable table({"stack", "SLOC", "paper analogue"});
  table.add_row({"native (tuned C++)", std::to_string(native_sloc),
                 "C++: 494"});
  table.add_row({"parallel (C++ + threads)", std::to_string(parallel_sloc),
                 "(future work in paper)"});
  table.add_row({"graphblas (driver over grb)",
                 std::to_string(graphblas_sloc), "-"});
  table.add_row({"dataframe (driver over df)",
                 std::to_string(dataframe_sloc), "Python w/Pandas: 162"});
  table.add_row({"arraylang (kernel programs)",
                 std::to_string(arraylang_sloc), "Matlab/Octave: 102"});
  std::printf("%s\n", table.str().c_str());

  std::printf("shape check: tuned C++ requires several times more kernel "
              "code than the\ninterpreted stack (paper: 494 vs 102) -> %s\n",
              native_sloc > 3 * arraylang_sloc ? "HOLDS" : "VIOLATED");
  return native_sloc > 3 * arraylang_sloc ? 0 : 1;
}
