// bench_serving — multi-threaded load generator for the rank server.
//
// Default mode runs the pipeline in-process, stands up a RankServer on an
// ephemeral loopback port, and drives it with N client threads issuing a
// weighted query mix; --connect targets an already-running prpb-serve
// instead (the CI loopback smoke does this). Each repeat reports sustained
// QPS; across repeats the document carries the QPS median + MAD plus the
// pooled client-observed p50/p99/p999 per query kind, as prpb-serving
// BenchCells (metric = "qps") that tools/bench_diff judges with the
// higher-is-better direction.
//
//   bench_serving --scale 16 --clients 8 --requests 20000 --repeats 3
//       --mix topk:45,rank:30,neighbors:20,ppr:5 --json BENCH_serving.json
//   bench_serving --connect 7070 --requests 1000 --scale 10
//       --verify-golden tests/data/golden_checksums.json
//
// --verify-golden closes the loop end to end: one full-restart ppr at the
// service's configured iteration count must reproduce the golden kernel-3
// rank digest bit for bit through the wire.
#include <cstdio>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <optional>
#include <thread>
#include <vector>

#include "core/backend.hpp"
#include "core/checksum.hpp"
#include "core/runner.hpp"
#include "io/file_stream.hpp"
#include "model/trajectory.hpp"
#include "rand/rng.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/fs.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

namespace {

using namespace prpb;

struct MixEntry {
  serve::Opcode opcode;
  double weight;
};

/// Parses "topk:45,rank:30,neighbors:20,ppr:5" into weighted entries.
std::vector<MixEntry> parse_mix(const std::string& text) {
  std::vector<MixEntry> mix;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string part = text.substr(pos, comma - pos);
    pos = comma + 1;
    const std::size_t colon = part.find(':');
    util::require(colon != std::string::npos,
                  "--mix entries must be op:weight, got '" + part + "'");
    const std::string name = part.substr(0, colon);
    const double weight = std::stod(part.substr(colon + 1));
    util::require(weight > 0, "--mix weights must be > 0");
    serve::Opcode opcode;
    if (name == "topk") {
      opcode = serve::Opcode::kTopk;
    } else if (name == "rank") {
      opcode = serve::Opcode::kRank;
    } else if (name == "neighbors") {
      opcode = serve::Opcode::kNeighbors;
    } else if (name == "ppr") {
      opcode = serve::Opcode::kPpr;
    } else if (name == "ping") {
      opcode = serve::Opcode::kPing;
    } else {
      throw util::ConfigError("--mix: unknown op '" + name + "'");
    }
    mix.push_back({opcode, weight});
  }
  util::require(!mix.empty(), "--mix must name at least one op");
  return mix;
}

/// Per-op latency samples from one client thread (milliseconds).
struct ClientSamples {
  std::vector<double> latency_ms[6];  // indexed by opcode value
  std::uint64_t completed = 0;
  std::uint64_t shed_retries = 0;
  std::string error;  // first hard failure, empty when clean
};

struct LoadOptions {
  std::uint16_t port = 0;
  int clients = 8;
  std::uint64_t requests = 20000;
  std::vector<MixEntry> mix;
  std::uint32_t topk = 10;
  std::uint32_t ppr_iters = 3;
  std::uint32_t ppr_restart = 8;
  std::uint64_t vertices = 0;
  std::uint64_t seed = 1;
};

/// One load repeat: `clients` threads race through a shared request
/// budget; returns wall seconds and every thread's samples.
double run_load(const LoadOptions& options,
                std::vector<ClientSamples>& samples) {
  // Signed on purpose: the budget overshoots by up to `clients` at the
  // end, and a signed counter just goes negative instead of wrapping.
  std::atomic<std::int64_t> remaining{
      static_cast<std::int64_t>(options.requests)};
  samples.assign(static_cast<std::size_t>(options.clients), {});

  double total_weight = 0;
  for (const MixEntry& entry : options.mix) total_weight += entry.weight;

  const auto started = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(options.clients));
  for (int t = 0; t < options.clients; ++t) {
    threads.emplace_back([&, t] {
      ClientSamples& mine = samples[static_cast<std::size_t>(t)];
      try {
        serve::RankClient client(options.port);
        rnd::Xoshiro256 rng(options.seed +
                            static_cast<std::uint64_t>(t) * 0x9e3779b9ULL);
        while (remaining.fetch_sub(1, std::memory_order_relaxed) > 0) {
          // Pick the op by weight.
          double pick = static_cast<double>(rng.next() >> 11) *
                        (1.0 / 9007199254740992.0) * total_weight;
          serve::Opcode opcode = options.mix.back().opcode;
          for (const MixEntry& entry : options.mix) {
            if (pick < entry.weight) {
              opcode = entry.opcode;
              break;
            }
            pick -= entry.weight;
          }
          serve::Request request;
          request.opcode = opcode;
          switch (opcode) {
            case serve::Opcode::kTopk:
              request.topk_k = options.topk;
              break;
            case serve::Opcode::kRank:
            case serve::Opcode::kNeighbors:
              request.vertex = rng.next() % options.vertices;
              break;
            case serve::Opcode::kPpr:
              request.ppr.iterations = options.ppr_iters;
              request.ppr.topk = options.topk;
              request.ppr.restart.reserve(options.ppr_restart);
              for (std::uint32_t i = 0; i < options.ppr_restart; ++i) {
                request.ppr.restart.push_back(rng.next() %
                                              options.vertices);
              }
              break;
            default:
              break;
          }
          for (;;) {
            const auto before = std::chrono::steady_clock::now();
            const serve::Response response = client.request(request);
            const auto after = std::chrono::steady_clock::now();
            if (response.ok()) {
              mine.latency_ms[static_cast<int>(opcode)].push_back(
                  std::chrono::duration<double, std::milli>(after - before)
                      .count());
              ++mine.completed;
              break;
            }
            if (serve::status_retryable(response.status)) {
              ++mine.shed_retries;
              continue;  // overloaded: the realistic client retries
            }
            throw util::InvariantError(
                std::string("query failed: ") +
                serve::status_name(response.status) + ": " + response.error);
          }
        }
      } catch (const std::exception& e) {
        mine.error = e.what();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const auto finished = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(finished - started).count();
}

double percentile(std::vector<double>& sorted_values, double q) {
  if (sorted_values.empty()) return 0;
  const double rank =
      q * static_cast<double>(sorted_values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_serving",
                       "load-generate against the rank server, reporting "
                       "QPS and latency percentiles per query mix");
  // Pipeline flags (in-process mode; --scale also labels --connect cells).
  args.add_option("scale", "graph scale S (N = 2^S)", "16");
  args.add_option("edge-factor", "edges per vertex k", "16");
  args.add_option("backend",
                  "native|parallel|graphblas|arraylang|dataframe", "native");
  args.add_option("iterations", "PageRank iterations", "20");
  args.add_option("damping", "PageRank damping factor c", "0.85");
  args.add_option("seed", "graph generator seed", "20160205");
  args.add_option("csr", "warm CSR form: plain | compressed", "plain");
  args.add_option("threads", "server worker threads", "4");
  args.add_option("queue-depth", "server request queue bound", "1024");
  // Load flags.
  args.add_option("connect",
                  "target an already-running prpb-serve on this loopback "
                  "port instead of serving in-process", "0");
  args.add_option("clients", "client threads", "8");
  args.add_option("requests", "requests per repeat (shared budget)",
                  "20000");
  args.add_option("warmup", "untimed warmup requests", "2000");
  args.add_option("repeats", "timed repeats (median + MAD)", "3");
  args.add_option("mix",
                  "weighted query mix, op:weight comma-separated "
                  "(ops: topk rank neighbors ppr ping)",
                  "topk:45,rank:30,neighbors:20,ppr:5");
  args.add_option("topk", "k for topk queries", "10");
  args.add_option("ppr-iters", "power iterations per ppr query", "3");
  args.add_option("ppr-restart", "restart-set size for ppr queries", "8");
  // Output / verification.
  args.add_option("json",
                  "write the prpb-serving cell document here", "");
  args.add_option("verify-golden",
                  "golden_checksums.json path: a full-restart ppr at the "
                  "configured iteration count must reproduce scale_<scale>'s "
                  "rank_digest through the wire", "");

  try {
    if (!args.parse(argc, argv)) return 0;

    const int scale = static_cast<int>(args.get_int("scale"));
    const std::string backend_name = args.get("backend");
    const std::string csr = args.get("csr");

    LoadOptions load;
    load.clients = static_cast<int>(args.get_int("clients"));
    load.requests = static_cast<std::uint64_t>(args.get_int("requests"));
    load.mix = parse_mix(args.get("mix"));
    load.topk = static_cast<std::uint32_t>(args.get_int("topk"));
    load.ppr_iters = static_cast<std::uint32_t>(args.get_int("ppr-iters"));
    load.ppr_restart =
        static_cast<std::uint32_t>(args.get_int("ppr-restart"));
    load.seed = static_cast<std::uint64_t>(args.get_int("seed")) + 1;
    util::require(load.clients >= 1, "--clients must be >= 1");
    util::require(load.requests >= 1, "--requests must be >= 1");
    const int repeats = static_cast<int>(args.get_int("repeats"));
    util::require(repeats >= 1, "--repeats must be >= 1");

    // Stand up (or connect to) the server.
    std::optional<serve::RankService> service;
    std::optional<serve::RankServer> server;
    const auto connect_port =
        static_cast<std::uint16_t>(args.get_int("connect"));
    std::uint64_t nnz = 0;
    if (connect_port != 0) {
      load.port = connect_port;
    } else {
      core::PipelineConfig config;
      config.scale = scale;
      config.edge_factor = static_cast<int>(args.get_int("edge-factor"));
      config.iterations = static_cast<int>(args.get_int("iterations"));
      config.damping = args.get_double("damping");
      config.seed = static_cast<std::uint64_t>(args.get_int("seed"));
      config.storage = "mem";
      config.csr = csr;
      const auto backend = core::make_backend(backend_name);
      std::fprintf(stderr,
                   "[bench_serving] pipeline: backend=%s scale=%d csr=%s\n",
                   backend_name.c_str(), scale, csr.c_str());
      core::PipelineResult result =
          core::run_pipeline(config, *backend, core::RunOptions{});
      util::require(!result.ranks.empty(),
                    "bench_serving needs the pagerank output");
      serve::ServiceOptions service_options;
      service_options.iterations = config.iterations;
      service_options.damping = config.damping;
      service_options.seed = config.seed;
      service_options.csr = csr;
      service.emplace(std::move(result.matrix), std::move(result.ranks),
                      service_options);
      serve::ServerOptions server_options;
      server_options.threads = static_cast<int>(args.get_int("threads"));
      server_options.queue_depth =
          static_cast<std::size_t>(args.get_int("queue-depth"));
      server.emplace(*service, server_options);
      server->start();
      load.port = server->port();
      nnz = service->nnz();
    }

    // The vertex universe (and nnz label) comes over the wire, so both
    // modes agree with what the server actually holds.
    std::uint32_t server_iterations;
    {
      serve::RankClient probe(load.port);
      const serve::Response info = probe.info();
      util::require(info.ok(), "info query failed");
      load.vertices = info.info.vertices;
      server_iterations = info.info.iterations;
      if (nnz == 0) nnz = info.info.nnz;
    }
    util::require(load.vertices > 0, "server holds an empty graph");

    // End-to-end golden verification through the wire.
    if (!args.get("verify-golden").empty()) {
      const auto golden =
          util::JsonValue::parse(io::read_file(args.get("verify-golden")));
      const util::JsonValue* entry =
          golden.find("scale_" + std::to_string(scale));
      util::require(entry != nullptr,
                    "verify-golden: no scale_" + std::to_string(scale) +
                        " entry");
      const util::JsonValue* expected = entry->find("rank_digest");
      util::require(expected != nullptr && expected->is_string(),
                    "verify-golden: entry has no rank_digest");
      serve::RankClient probe(load.port);
      serve::PprRequest full;
      full.iterations = server_iterations;
      full.topk = 1;
      const serve::Response response = probe.ppr(full);
      util::require(response.ok(), "verify-golden: ppr query failed");
      const std::string got = core::digest_hex(response.ppr.digest);
      if (got != expected->string()) {
        std::fprintf(stderr,
                     "bench_serving: GOLDEN MISMATCH: full-restart ppr "
                     "digest %s != golden rank_digest %s\n",
                     got.c_str(), expected->string().c_str());
        return 1;
      }
      std::printf("golden digest verified over the wire: %s\n", got.c_str());
    }

    // Warmup (untimed), then the timed repeats.
    const std::uint64_t warmup =
        static_cast<std::uint64_t>(args.get_int("warmup"));
    if (warmup > 0) {
      LoadOptions warm = load;
      warm.requests = warmup;
      std::vector<ClientSamples> scratch;
      run_load(warm, scratch);
      for (const ClientSamples& samples : scratch) {
        util::require(samples.error.empty(),
                      "warmup client failed: " + samples.error);
      }
    }

    std::vector<double> qps_per_repeat;
    std::vector<double> pooled[6];
    std::uint64_t total_shed = 0;
    for (int repeat = 0; repeat < repeats; ++repeat) {
      std::vector<ClientSamples> samples;
      load.seed += 0x1000;  // distinct request streams per repeat
      const double wall = run_load(load, samples);
      std::uint64_t completed = 0;
      for (ClientSamples& client : samples) {
        util::require(client.error.empty(),
                      "client failed: " + client.error);
        completed += client.completed;
        total_shed += client.shed_retries;
        for (int op = 0; op < 6; ++op) {
          pooled[op].insert(pooled[op].end(),
                            client.latency_ms[op].begin(),
                            client.latency_ms[op].end());
        }
      }
      const double qps = static_cast<double>(completed) / wall;
      qps_per_repeat.push_back(qps);
      std::fprintf(stderr,
                   "[bench_serving] repeat %d: %llu requests in %.3fs "
                   "(%.0f QPS)\n",
                   repeat + 1, (unsigned long long)completed, wall, qps);
    }

    const double qps_median = util::median(qps_per_repeat);
    const double qps_mad = util::median_abs_deviation(qps_per_repeat);

    // Cells: the mixed-load headline plus one per queried op, all sharing
    // the serving identity axes (metric=qps makes the key disjoint from
    // every kernel cell).
    const auto make_cell = [&](const std::string& name) {
      model::BenchCell cell;
      cell.kernel = -1;
      cell.backend = backend_name;
      cell.scale = scale;
      cell.edges = nnz;
      cell.storage = "mem";
      cell.stage_format = "tsv";
      cell.algorithm = name;
      cell.csr = csr;
      cell.repeats = repeats;
      cell.metric = "qps";
      return cell;
    };
    std::vector<model::BenchCell> cells;
    std::vector<double> mixed;
    for (int op = 0; op < 6; ++op) {
      mixed.insert(mixed.end(), pooled[op].begin(), pooled[op].end());
    }
    std::sort(mixed.begin(), mixed.end());
    model::BenchCell headline = make_cell("serve:mixed");
    headline.qps = qps_median;
    headline.qps_mad = qps_mad;
    headline.p50_ms = percentile(mixed, 0.50);
    headline.p99_ms = percentile(mixed, 0.99);
    headline.p999_ms = percentile(mixed, 0.999);
    headline.seconds = headline.p50_ms / 1000.0;  // informational
    cells.push_back(headline);

    util::TextTable table(
        {"query", "count", "QPS share", "p50 ms", "p99 ms", "p999 ms"});
    const double total_wall =
        static_cast<double>(load.requests) * repeats / qps_median;
    for (int op = 0; op < 6; ++op) {
      if (pooled[op].empty()) continue;
      std::sort(pooled[op].begin(), pooled[op].end());
      const char* name =
          serve::opcode_name(static_cast<serve::Opcode>(op));
      model::BenchCell cell = make_cell(std::string("serve:") + name);
      cell.qps = static_cast<double>(pooled[op].size()) / total_wall;
      cell.qps_mad = 0;  // per-op split of a shared run: no own noise model
      cell.p50_ms = percentile(pooled[op], 0.50);
      cell.p99_ms = percentile(pooled[op], 0.99);
      cell.p999_ms = percentile(pooled[op], 0.999);
      cells.push_back(cell);
      table.add_row({name, std::to_string(pooled[op].size()),
                     util::fixed(cell.qps, 0),
                     util::fixed(cell.p50_ms, 3), util::fixed(cell.p99_ms, 3),
                     util::fixed(cell.p999_ms, 3)});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf(
        "bench_serving: %s QPS (mixed, median of %d, MAD %s) | "
        "p50 %.3f ms, p99 %.3f ms, p999 %.3f ms | %llu shed retries\n",
        util::fixed(qps_median, 0).c_str(), repeats,
        util::fixed(qps_mad, 0).c_str(), headline.p50_ms, headline.p99_ms,
        headline.p999_ms, (unsigned long long)total_shed);

    if (!args.get("json").empty()) {
      io::write_file(args.get("json"),
                     model::cells_json(cells, "prpb-serving") + "\n");
      std::printf("wrote %zu cells to %s\n", cells.size(),
                  args.get("json").c_str());
    }

    if (server.has_value()) {
      server->shutdown();
      const serve::ServerStats stats = server->stats();
      std::fprintf(stderr,
                   "[bench_serving] server: %llu replies, %llu shed, "
                   "%llu malformed\n",
                   (unsigned long long)stats.replies_sent,
                   (unsigned long long)stats.requests_shed,
                   (unsigned long long)stats.malformed_frames);
    }
  } catch (const util::Error& e) {
    std::fprintf(stderr, "bench_serving: error: %s\n", e.what());
    return 1;
  }
  return 0;
}
