// Graph analysis beyond PageRank — the "bulk analyze graphs" operation
// class from the paper's Figure 2, run on the pipeline's own output using
// the GraphBLAS layer: BFS reachability, shortest paths, triangle count,
// connected components. Also demonstrates Matrix Market interop: the
// kernel-2 matrix is exported to .mtx and reloaded.
#include <cmath>
#include <cstdio>
#include <set>

#include "core/backend_native.hpp"
#include "core/runner.hpp"
#include "core/validate.hpp"
#include "grb/algorithms.hpp"
#include "io/matrix_market.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/fs.hpp"

int main(int argc, char** argv) {
  using namespace prpb;

  util::ArgParser args("graph_analysis",
                       "GraphBLAS analytics on the pipeline's graph");
  args.add_option("scale", "graph scale", "10");
  if (!args.parse(argc, argv)) return 0;

  core::PipelineConfig config;
  config.scale = static_cast<int>(args.get_int("scale"));
  util::TempDir work("prpb-analysis");
  config.work_dir = work.path();

  core::NativeBackend backend;
  const core::PipelineResult result = core::run_pipeline(config, backend);
  std::printf("pipeline complete: %llu vertices, %llu matrix entries\n\n",
              (unsigned long long)result.matrix.rows(),
              (unsigned long long)result.matrix.nnz());

  // Matrix Market round trip: export kernel-2's matrix, reload, verify.
  const auto mtx_path = work.sub("kernel2.mtx");
  io::write_matrix_market(result.matrix, mtx_path);
  const auto reloaded = io::read_matrix_market(mtx_path);
  std::printf("matrix market round trip: %s (%s on disk)\n\n",
              result.matrix.approx_equal(reloaded, 0.0) ? "EXACT" : "DIFFERS",
              util::human_bytes(std::filesystem::file_size(mtx_path))
                  .c_str());

  const grb::Matrix graph{reloaded};

  // BFS from the top-ranked vertex.
  const auto start = core::top_k(result.ranks, 1).front();
  const auto levels = grb::bfs_levels(graph, start);
  const auto frontiers = grb::frontier_sizes(graph, start);
  std::uint64_t reachable = 0;
  for (const auto l : levels) reachable += l >= 0 ? 1 : 0;
  std::printf("BFS from top page %llu: %llu/%llu vertices reachable in %zu "
              "hops\n",
              (unsigned long long)start, (unsigned long long)reachable,
              (unsigned long long)levels.size(), frontiers.size() - 1);
  std::printf("  frontier sizes:");
  for (const auto s : frontiers) std::printf(" %llu", (unsigned long long)s);
  std::printf("\n");

  // Shortest paths treat the normalized weights as costs.
  const auto dist = grb::sssp(graph, start);
  double max_finite = 0;
  for (const double d : dist) {
    if (std::isfinite(d)) max_finite = std::max(max_finite, d);
  }
  std::printf("SSSP: farthest reachable vertex at cost %.4f\n", max_finite);

  // Structure analytics.
  std::printf("triangles: %llu\n",
              (unsigned long long)grb::triangle_count(graph));
  const auto labels = grb::connected_components(graph);
  const std::set<std::uint64_t> components(labels.begin(), labels.end());
  std::printf("weakly connected components: %zu\n", components.size());
  return 0;
}
