// prpb — the full pipeline driver.
//
// Runs any backend at any scale with any generator, reporting the paper's
// per-kernel metrics, with optional result validation. Examples:
//
//   prpb --scale 18 --backend native
//   prpb --scale 14 --backend arraylang --generator ppl --files 8
//   prpb --scale 10 --backend graphblas --validate
//   prpb --scale 20 --backend native --memory-budget 16000000   # external sort
//   prpb --scale 14 --backend parallel --trace-out trace.json   # Perfetto
#include <cstdio>

#include "core/backend.hpp"
#include "core/report.hpp"
#include "core/runner.hpp"
#include "core/validate.hpp"
#include "fault/plan.hpp"
#include "io/file_stream.hpp"
#include "obs/metrics.hpp"
#include "obs/resource_sampler.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/fs.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  using namespace prpb;

  util::ArgParser args("prpb", "PageRank Pipeline Benchmark driver");
  args.add_option("scale", "graph scale S (N = 2^S)", "16");
  args.add_option("edge-factor", "edges per vertex k", "16");
  args.add_option("backend",
                  "native|parallel|graphblas|arraylang|dataframe", "native");
  args.add_option("generator", "kronecker|bter|ppl", "kronecker");
  args.add_option("source",
                  "kernel-0 graph source: generator (the paper's K0) | "
                  "external (ingest --input)", "generator");
  args.add_option("input",
                  "external graph file: SNAP-style .txt/.tsv/.csv edge list "
                  "or .mtx; implies --source external", "");
  args.add_option("algorithm",
                  "comma-separated kernel-3 algorithms: "
                  "pagerank,pagerank_dopt,bfs,cc", "pagerank");
  args.add_option("files", "shard files per stage", "1");
  args.add_option("iterations", "PageRank iterations", "20");
  args.add_option("damping", "PageRank damping factor c", "0.85");
  args.add_option("seed", "graph generator seed", "20160205");
  args.add_option("work-dir",
                  "staging directory (default: fresh temp dir)", "");
  args.add_option("storage",
                  "stage store: dir (disk) | mem (in-memory ablation)",
                  "dir");
  args.add_option("stage-format",
                  "stage encoding: tsv (paper format) | binary (columnar)",
                  "tsv");
  args.add_option("memory-budget",
                  "kernel-1 RAM budget in bytes; 0 = unlimited", "0");
  args.add_option("csr",
                  "kernel-3 CSR form: plain (8-byte indices) | compressed "
                  "(delta-varint groups)", "plain");
  args.add_option("fast-path",
                  "src/perf fast paths (radix sort, prefetch, blocked "
                  "SpMV): on | off", "off");
  args.add_option("faults",
                  "fault-injection plan, e.g. "
                  "'read_error@k1_sorted#2;bit_flip@k0_edges' "
                  "(kinds: read_error short_read write_error torn_write "
                  "truncate bit_flip)", "");
  args.add_option("fault-seed",
                  "seed for fault triggers and retry jitter (0 = --seed)",
                  "0");
  args.add_option("retry-max",
                  "kernel attempts on transient I/O faults (1 = no retry)",
                  "1");
  args.add_option("retry-backoff-ms",
                  "base backoff before a retry; doubles per attempt", "1");
  args.add_option("json", "write a machine-readable run report here", "");
  args.add_option("trace-out",
                  "write a Chrome trace_event JSON trace here "
                  "(chrome://tracing, Perfetto)", "");
  args.add_option("metrics-interval-ms",
                  "resource-sampler period for trace counter tracks", "50");
  args.add_flag("checkpoint",
                "verify each stage against as-written digests and persist "
                "checkpoint manifests");
  args.add_flag("resume",
                "skip kernels whose checkpoints validate (implies "
                "--checkpoint; requires --work-dir)");
  args.add_flag("validate", "run the dense eigenvector check (N <= 8192)");
  args.add_flag("sort-start-only", "kernel 1 orders by start vertex only");
  args.add_flag("verbose", "log kernel progress");
  if (!args.parse(argc, argv)) return 0;

  if (args.get_flag("verbose")) util::set_log_level(util::LogLevel::kInfo);

  core::PipelineConfig config;
  config.scale = static_cast<int>(args.get_int("scale"));
  config.edge_factor = static_cast<int>(args.get_int("edge-factor"));
  config.generator = args.get("generator");
  config.source = args.get("source");
  if (!args.get("input").empty()) {
    config.input_path = args.get("input");
    if (config.source == "generator") config.source = "external";
  }
  config.num_files = static_cast<std::size_t>(args.get_int("files"));
  config.iterations = static_cast<int>(args.get_int("iterations"));
  config.damping = args.get_double("damping");
  config.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  config.memory_budget_bytes =
      static_cast<std::uint64_t>(args.get_int("memory-budget"));
  config.storage = args.get("storage");
  config.stage_format = args.get("stage-format");
  config.csr = args.get("csr");
  const std::string fast_path = args.get("fast-path");
  util::require(fast_path == "on" || fast_path == "off",
                "--fast-path must be 'on' or 'off'");
  config.fast_path = fast_path == "on";
  if (args.get_flag("sort-start-only"))
    config.sort_key = sort::SortKey::kStart;

  std::optional<util::TempDir> temp;
  if (!args.get("work-dir").empty()) {
    config.work_dir = args.get("work-dir");
  } else if (config.storage != "mem") {
    temp.emplace("prpb-cli");
    config.work_dir = temp->path();
  }

  try {
    config.algorithms = core::parse_algorithm_list(args.get("algorithm"));
    const auto backend = core::make_backend(args.get("backend"));
    std::string algorithms;
    for (const auto& algorithm : config.algorithms) {
      if (!algorithms.empty()) algorithms += ",";
      algorithms += algorithm;
    }
    if (config.source == "external") {
      std::printf(
          "prpb: backend=%s source=external input=%s algorithms=%s "
          "files=%zu storage=%s stage-format=%s fast-path=%s\n",
          backend->name().c_str(), config.input_path.string().c_str(),
          algorithms.c_str(), config.num_files, config.storage.c_str(),
          config.stage_format.c_str(), config.fast_path ? "on" : "off");
    } else {
      std::printf(
          "prpb: backend=%s generator=%s scale=%d (N=%s, M=%s) "
          "algorithms=%s files=%zu storage=%s stage-format=%s "
          "fast-path=%s\n",
          backend->name().c_str(), config.generator.c_str(), config.scale,
          util::human_count(config.num_vertices()).c_str(),
          util::human_count(config.num_edges()).c_str(), algorithms.c_str(),
          config.num_files, config.storage.c_str(),
          config.stage_format.c_str(), config.fast_path ? "on" : "off");
    }

    // Observability: tracing (and the resource-counter tracks) only turn
    // on when --trace-out is given; the metrics registry runs either way
    // so the JSON report always carries typed metrics.
    const std::string trace_out = args.get("trace-out");
    obs::TraceRecorder recorder(!trace_out.empty());
    obs::MetricsRegistry registry;
    core::RunOptions run_options;
    run_options.hooks.metrics = &registry;

    // Resilience: fault injection, retries, checkpoints and resume.
    std::uint64_t fault_seed =
        static_cast<std::uint64_t>(args.get_int("fault-seed"));
    if (fault_seed == 0) fault_seed = config.seed;
    run_options.fault_plan =
        fault::FaultPlan::parse(args.get("faults"), fault_seed);
    run_options.retry.max_attempts =
        static_cast<int>(args.get_int("retry-max"));
    run_options.retry.base_delay_ms = args.get_double("retry-backoff-ms");
    run_options.retry.seed = fault_seed;
    run_options.checkpoint = args.get_flag("checkpoint");
    run_options.resume = args.get_flag("resume");
    util::require(!run_options.resume || !args.get("work-dir").empty(),
                  "--resume requires --work-dir (a fresh temp dir has "
                  "nothing to resume from)");
    std::optional<obs::ResourceSampler> sampler;
    if (!trace_out.empty()) {
      run_options.hooks.trace = &recorder;
      obs::ResourceSampler::Options sampler_options;
      sampler_options.interval_ms =
          static_cast<int>(args.get_int("metrics-interval-ms"));
      sampler_options.trace = &recorder;
      sampler.emplace(sampler_options);
      sampler->start();
    }

    const core::PipelineResult result =
        core::run_pipeline(config, *backend, run_options);

    if (sampler.has_value()) sampler->stop();
    if (!trace_out.empty()) {
      recorder.write_chrome_trace(trace_out);
      std::printf("trace written to %s (%zu events, peak RSS %.1f MB)\n",
                  trace_out.c_str(), recorder.event_count(),
                  sampler.has_value()
                      ? static_cast<double>(sampler->peak_rss_bytes()) /
                            (1024.0 * 1024.0)
                      : 0.0);
    }

    util::TextTable table(
        {"kernel", "seconds", "edges/sec", "MB read", "MB written", "note"});
    const auto mb = [](std::uint64_t bytes) {
      return util::fixed(static_cast<double>(bytes) / (1024.0 * 1024.0), 1);
    };
    table.add_row({"K0 generate", util::fixed(result.k0.seconds, 4),
                   util::sci(result.k0.edges_per_second()),
                   mb(result.k0.bytes_read), mb(result.k0.bytes_written),
                   "untimed by spec"});
    table.add_row({"K1 sort", util::fixed(result.k1.seconds, 4),
                   util::sci(result.k1.edges_per_second()),
                   mb(result.k1.bytes_read), mb(result.k1.bytes_written), ""});
    table.add_row({"K2 filter", util::fixed(result.k2.seconds, 4),
                   util::sci(result.k2.edges_per_second()),
                   mb(result.k2.bytes_read), mb(result.k2.bytes_written), ""});
    for (const core::AlgorithmRun& run : result.algorithms) {
      std::string note = run.output.implementation;
      if (run.output.has_ranks()) {
        note += ", " + std::to_string(run.output.iterations) + " iterations";
      } else if (!run.output.levels.empty()) {
        note += ", depth " + std::to_string(run.output.iterations) +
                " from v" + std::to_string(run.output.bfs_source);
      }
      table.add_row({"K3 " + run.output.algorithm,
                     util::fixed(run.metrics.seconds, 4),
                     util::sci(run.metrics.edges_per_second()),
                     mb(run.metrics.bytes_read),
                     mb(run.metrics.bytes_written), note});
    }
    std::printf("\n%s", table.str().c_str());

    if (result.graph.source == "external") {
      std::printf(
          "\nexternal graph: %llu vertices, %llu edges (%s%s), "
          "out-degree max=%llu mean=%.2f gini=%.3f top1%%=%.3f\n",
          (unsigned long long)result.graph.vertices,
          (unsigned long long)result.graph.edges,
          result.graph.input_format.c_str(),
          result.graph.identity_remap ? "" : ", remapped vertex ids",
          (unsigned long long)result.graph.out_degree_skew.max_degree,
          result.graph.out_degree_skew.mean_degree,
          result.graph.out_degree_skew.gini,
          result.graph.out_degree_skew.top1pct_mass);
    }

    std::printf("\nalgorithm checksums:");
    for (const core::AlgorithmRun& run : result.algorithms) {
      std::printf(" %s=%s", run.output.algorithm.c_str(),
                  run.output.checksum.c_str());
    }
    std::printf("\n");

    if (!result.fault_plan.empty() || result.checkpointing ||
        result.retry_max_attempts > 1) {
      std::printf(
          "\nresilience: faults injected=%llu, attempts k0..k3=%d/%d/%d/%d, "
          "checkpointing=%s, resumed k0=%s k1=%s\n",
          (unsigned long long)result.faults_injected, result.k0.attempts,
          result.k1.attempts, result.k2.attempts, result.k3.attempts,
          result.checkpointing ? "on" : "off",
          result.k0.resumed ? "yes" : "no", result.k1.resumed ? "yes" : "no");
    }

    std::printf("\nkernel-2 matrix: %llu x %llu, nnz = %llu\n",
                (unsigned long long)result.matrix.rows(),
                (unsigned long long)result.matrix.cols(),
                (unsigned long long)result.matrix.nnz());

    std::optional<core::EigenCheck> check;
    if (args.get_flag("validate")) {
      util::require(!result.ranks.empty(),
                    "--validate needs the pagerank algorithm in --algorithm");
      util::require(result.num_vertices <= 8192,
                    "--validate requires N <= 8192 (scale <= 13)");
      check = core::validate_against_eigenvector(
          result.matrix, result.ranks, config.damping, 1e-6);
      std::printf("eigenvector check: %s (max |diff| = %.2e, %d solver "
                  "iterations)\n",
                  check->pass ? "PASS" : "FAIL", check->max_abs_diff,
                  check->eigensolver_iterations);
    }

    if (!args.get("json").empty()) {
      io::write_file(args.get("json"),
                     core::run_report_json(config, result, check) + "\n");
      std::printf("report written to %s\n", args.get("json").c_str());
    }
    if (check && !check->pass) return 1;
  } catch (const util::Error& e) {
    std::fprintf(stderr, "prpb: error: %s\n", e.what());
    return 1;
  }
  return 0;
}
