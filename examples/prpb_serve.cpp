// prpb-serve — PageRank-as-a-service.
//
// Runs the pipeline once (any backend, any scale, plain or compressed
// CSR), then keeps the kernel-2 matrix and kernel-3 ranks warm behind a
// concurrent loopback TCP query server: topk, rank, weighted neighbors,
// and per-request personalized PageRank. Examples:
//
//   prpb-serve --scale 16 --port 7070
//   prpb-serve --scale 14 --backend parallel --csr compressed --threads 8
//   prpb-serve --scale 10 --port 0          # ephemeral; port is printed
//
// Protocol and overload semantics: DESIGN.md §13. Stop with SIGINT or
// SIGTERM; shutdown drains every request already accepted.
#include <csignal>
#include <cstdio>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/backend.hpp"
#include "core/runner.hpp"
#include "io/file_stream.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/log.hpp"

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  using namespace prpb;

  util::ArgParser args("prpb-serve",
                       "serve rank queries from a warm pipeline result");
  // Pipeline flags (mirroring prpb).
  args.add_option("scale", "graph scale S (N = 2^S)", "16");
  args.add_option("edge-factor", "edges per vertex k", "16");
  args.add_option("backend",
                  "native|parallel|graphblas|arraylang|dataframe", "native");
  args.add_option("generator", "kronecker|bter|ppl", "kronecker");
  args.add_option("source",
                  "kernel-0 graph source: generator | external (--input)",
                  "generator");
  args.add_option("input",
                  "external graph file (.txt/.tsv/.csv/.mtx); implies "
                  "--source external", "");
  args.add_option("files", "shard files per stage", "1");
  args.add_option("iterations", "PageRank iterations", "20");
  args.add_option("damping", "PageRank damping factor c", "0.85");
  args.add_option("seed", "graph generator seed", "20160205");
  args.add_option("work-dir",
                  "staging directory (default: fresh temp dir)", "");
  args.add_option("storage",
                  "stage store: dir (disk) | mem (in-memory)", "mem");
  args.add_option("stage-format",
                  "stage encoding: tsv | binary", "tsv");
  args.add_option("csr",
                  "warm CSR form: plain | compressed (delta-varint)",
                  "plain");
  args.add_option("fast-path", "src/perf fast paths: on | off", "off");
  // Serving flags.
  args.add_option("port", "TCP port on 127.0.0.1 (0 = ephemeral)", "0");
  args.add_option("threads", "query worker threads", "4");
  args.add_option("queue-depth",
                  "bounded request queue; full = shed with a retryable "
                  "overloaded reply", "256");
  args.add_option("metrics-json",
                  "write a metrics snapshot here on shutdown", "");
  args.add_option("trace-out",
                  "write a Chrome trace_event JSON of served requests here",
                  "");
  args.add_flag("verbose", "log progress");
  if (!args.parse(argc, argv)) return 0;

  if (args.get_flag("verbose")) util::set_log_level(util::LogLevel::kInfo);

  core::PipelineConfig config;
  config.scale = static_cast<int>(args.get_int("scale"));
  config.edge_factor = static_cast<int>(args.get_int("edge-factor"));
  config.generator = args.get("generator");
  config.source = args.get("source");
  if (!args.get("input").empty()) {
    config.input_path = args.get("input");
    if (config.source == "generator") config.source = "external";
  }
  config.num_files = static_cast<std::size_t>(args.get_int("files"));
  config.iterations = static_cast<int>(args.get_int("iterations"));
  config.damping = args.get_double("damping");
  config.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  config.storage = args.get("storage");
  config.stage_format = args.get("stage-format");
  config.csr = args.get("csr");
  const std::string fast_path = args.get("fast-path");
  util::require(fast_path == "on" || fast_path == "off",
                "--fast-path must be 'on' or 'off'");
  config.fast_path = fast_path == "on";

  std::optional<util::TempDir> temp;
  if (!args.get("work-dir").empty()) {
    config.work_dir = args.get("work-dir");
  } else if (config.storage != "mem") {
    temp.emplace("prpb-serve");
    config.work_dir = temp->path();
  }

  try {
    const auto backend = core::make_backend(args.get("backend"));
    std::printf("prpb-serve: running pipeline (backend=%s scale=%d "
                "csr=%s)...\n",
                backend->name().c_str(), config.scale, config.csr.c_str());
    std::fflush(stdout);
    core::PipelineResult result =
        core::run_pipeline(config, *backend, core::RunOptions{});
    util::require(!result.ranks.empty(),
                  "prpb-serve needs the pagerank algorithm output");

    serve::ServiceOptions service_options;
    service_options.iterations = config.iterations;
    service_options.damping = config.damping;
    service_options.seed = config.seed;
    service_options.csr = config.csr;
    const serve::RankService service(std::move(result.matrix),
                                     std::move(result.ranks),
                                     service_options);

    const std::string trace_out = args.get("trace-out");
    obs::TraceRecorder recorder(!trace_out.empty());
    obs::MetricsRegistry registry;
    serve::ServerOptions server_options;
    server_options.port =
        static_cast<std::uint16_t>(args.get_int("port"));
    server_options.threads = static_cast<int>(args.get_int("threads"));
    server_options.queue_depth =
        static_cast<std::size_t>(args.get_int("queue-depth"));
    server_options.hooks.metrics = &registry;
    if (!trace_out.empty()) server_options.hooks.trace = &recorder;

    serve::RankServer server(service, server_options);
    server.start();
    std::printf("prpb-serve: listening on 127.0.0.1:%u "
                "(%llu vertices, %llu edges, %d workers, queue %zu)\n",
                server.port(), (unsigned long long)service.vertices(),
                (unsigned long long)service.nnz(), server_options.threads,
                server_options.queue_depth);
    std::fflush(stdout);

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    while (!g_stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::printf("prpb-serve: shutting down (draining in-flight "
                "requests)...\n");
    server.shutdown();
    const serve::ServerStats stats = server.stats();
    std::printf("prpb-serve: served %llu replies over %llu connections "
                "(%llu shed, %llu malformed)\n",
                (unsigned long long)stats.replies_sent,
                (unsigned long long)stats.connections_accepted,
                (unsigned long long)stats.requests_shed,
                (unsigned long long)stats.malformed_frames);

    if (!args.get("metrics-json").empty()) {
      io::write_file(args.get("metrics-json"),
                     registry.snapshot().json() + "\n");
      std::printf("metrics written to %s\n",
                  args.get("metrics-json").c_str());
    }
    if (!trace_out.empty()) {
      recorder.write_chrome_trace(trace_out);
      std::printf("trace written to %s (%zu events)\n", trace_out.c_str(),
                  recorder.event_count());
    }
  } catch (const util::Error& e) {
    std::fprintf(stderr, "prpb-serve: error: %s\n", e.what());
    return 1;
  }
  return 0;
}
