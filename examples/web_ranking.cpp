// Web ranking scenario: PageRank's original application.
//
// Generates a synthetic "web crawl" (power-law Kronecker graph standing in
// for a hyperlink graph), runs the full pipeline, and reports the top pages
// with their ranks — then shows how the ranking responds to the damping
// factor, the knob that trades link structure against random teleports.
#include <cstdio>

#include "core/backend_native.hpp"
#include "core/runner.hpp"
#include "core/validate.hpp"
#include "sparse/pagerank.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/fs.hpp"

int main(int argc, char** argv) {
  using namespace prpb;

  util::ArgParser args("web_ranking", "rank a synthetic web-link graph");
  args.add_option("scale", "crawl size: 2^scale pages", "14");
  args.add_option("top", "pages to display", "10");
  if (!args.parse(argc, argv)) return 0;

  core::PipelineConfig config;
  config.scale = static_cast<int>(args.get_int("scale"));
  config.num_files = 4;
  util::TempDir work("prpb-web");
  config.work_dir = work.path();

  std::printf("crawling synthetic web: %s pages, %s links\n",
              util::human_count(config.num_vertices()).c_str(),
              util::human_count(config.num_edges()).c_str());

  core::NativeBackend backend;
  const core::PipelineResult result = core::run_pipeline(config, backend);

  const auto& report = backend.filter_report();
  std::printf("link filtering: removed %llu super-node column(s) and %llu "
              "leaf column(s); %llu dangling pages remain\n\n",
              (unsigned long long)report.supernode_columns,
              (unsigned long long)report.leaf_columns,
              (unsigned long long)report.dangling_rows);

  const auto top_n = static_cast<std::size_t>(args.get_int("top"));
  const auto ranks_n = sparse::normalized1(result.ranks);
  util::TextTable table({"rank", "page", "score", "x uniform"});
  const double uniform = 1.0 / static_cast<double>(config.num_vertices());
  std::size_t position = 1;
  for (const auto page : core::top_k(ranks_n, top_n)) {
    table.add_row({std::to_string(position++),
                   "page-" + std::to_string(page),
                   util::sci(ranks_n[page]),
                   util::fixed(ranks_n[page] / uniform, 1)});
  }
  std::printf("%s\n", table.str().c_str());

  // Damping sweep: lower c means more teleporting, flatter ranking.
  std::printf("damping sweep (top page score / uniform):\n");
  for (const double c : {0.5, 0.7, 0.85, 0.95}) {
    sparse::PageRankConfig pr;
    pr.damping = c;
    pr.seed = config.seed;
    const auto ranks = sparse::normalized1(sparse::pagerank(result.matrix, pr));
    const auto best = core::top_k(ranks, 1).front();
    std::printf("  c = %.2f -> top page %llu at %.1fx uniform\n", c,
                (unsigned long long)best, ranks[best] / uniform);
  }
  return 0;
}
