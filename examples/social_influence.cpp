// Social-network influence analysis — one of the PageRank applications the
// paper's introduction cites ("social network analysis [Java 2007, Kwak et
// al 2009]").
//
// Uses the BTER generator (communities + power-law degrees, a realistic
// social topology), ranks members, and contrasts PageRank influence with
// raw follower counts (in-degree): the two orderings agree at the head but
// diverge in the tail, which is exactly why PageRank is used.
#include <algorithm>
#include <cstdio>
#include <set>

#include "core/backend_native.hpp"
#include "core/runner.hpp"
#include "core/validate.hpp"
#include "gen/bter.hpp"
#include "gen/degree.hpp"
#include "sparse/pagerank.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/fs.hpp"

int main(int argc, char** argv) {
  using namespace prpb;

  util::ArgParser args("social_influence",
                       "PageRank influence analysis on a BTER social graph");
  args.add_option("scale", "community size: 2^scale members", "13");
  args.add_option("top", "influencers to display", "10");
  if (!args.parse(argc, argv)) return 0;

  core::PipelineConfig config;
  config.scale = static_cast<int>(args.get_int("scale"));
  config.generator = "bter";
  config.num_files = 2;
  util::TempDir work("prpb-social");
  config.work_dir = work.path();

  std::printf("social graph (BTER): %s members, %s follow edges\n\n",
              util::human_count(config.num_vertices()).c_str(),
              util::human_count(config.num_edges()).c_str());

  core::NativeBackend backend;
  const core::PipelineResult result = core::run_pipeline(config, backend);

  // Follower counts from the raw (pre-filter) edges.
  gen::BterParams params;
  params.scale = config.scale;
  params.edge_factor = config.edge_factor;
  params.seed = config.seed;
  const gen::BterGenerator generator(params);
  const auto stats =
      gen::degree_stats(generator.generate_all(), config.num_vertices());

  std::vector<double> followers(stats.in_degree.begin(),
                                stats.in_degree.end());
  const auto top_n = static_cast<std::size_t>(args.get_int("top"));
  const auto by_rank = core::top_k(result.ranks, top_n);
  const auto by_followers = core::top_k(followers, top_n);

  util::TextTable table(
      {"#", "by PageRank", "score", "by followers", "count"});
  const auto ranks_n = sparse::normalized1(result.ranks);
  for (std::size_t i = 0; i < top_n; ++i) {
    table.add_row({std::to_string(i + 1),
                   "user-" + std::to_string(by_rank[i]),
                   util::sci(ranks_n[by_rank[i]]),
                   "user-" + std::to_string(by_followers[i]),
                   std::to_string(static_cast<long long>(
                       followers[by_followers[i]]))});
  }
  std::printf("%s\n", table.str().c_str());

  const std::set<std::uint64_t> rank_set(by_rank.begin(), by_rank.end());
  std::size_t overlap = 0;
  for (const auto u : by_followers) overlap += rank_set.count(u);
  std::printf("top-%zu overlap between the two orderings: %zu/%zu\n", top_n,
              overlap, top_n);
  std::printf("degree distribution log-log slope: %.2f (power law => "
              "clearly negative)\n",
              gen::log_log_slope(gen::degree_histogram(
                  std::vector<std::uint64_t>(stats.in_degree.begin(),
                                             stats.in_degree.end()))));
  return 0;
}
