// Interactive arraylang REPL — explore the benchmark's interpreted stack
// directly. The same language the arraylang backend runs kernels in:
//
//   $ ./build/examples/arraylang_repl
//   > e = gen_edges('kronecker', 8, 16, 1)
//   > u = stride(e, 2, 1)
//   > A = sparse(u, stride(e, 2, 2), 1, 256, 256)
//   > din = sum(A, 1)
//   > print(max(din))
//
// Also runs a script file when given one as an argument:
//   $ ./build/examples/arraylang_repl script.m
#include <cstdio>
#include <iostream>
#include <string>

#include "interp/ast.hpp"
#include "interp/interpreter.hpp"
#include "interp/parser.hpp"
#include "io/file_stream.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace {

void print_value(const prpb::interp::Value& value) {
  using prpb::interp::Value;
  if (value.is_scalar()) {
    std::printf("ans = %s\n", prpb::util::fixed(value.scalar(), 6).c_str());
  } else if (value.is_string()) {
    std::printf("ans = '%s'\n", value.str().c_str());
  } else if (value.is_array()) {
    const auto& a = value.array();
    std::printf("ans = array[%zu]:", a.size());
    for (std::size_t i = 0; i < a.size() && i < 10; ++i) {
      std::printf(" %s", prpb::util::fixed(a[i], 4).c_str());
    }
    if (a.size() > 10) std::printf(" ...");
    std::printf("\n");
  } else {
    std::printf("ans = sparse %llu x %llu, nnz %llu\n",
                (unsigned long long)value.matrix().rows(),
                (unsigned long long)value.matrix().cols(),
                (unsigned long long)value.matrix().nnz());
  }
}

void drain_output(prpb::interp::Interpreter& vm, std::size_t& cursor) {
  for (; cursor < vm.output().size(); ++cursor) {
    std::printf("%s\n", vm.output()[cursor].c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  prpb::interp::Interpreter vm;
  std::size_t output_cursor = 0;

  if (argc > 1) {
    try {
      vm.run(prpb::io::read_file(argv[1]));
      drain_output(vm, output_cursor);
    } catch (const prpb::util::Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    return 0;
  }

  std::printf("arraylang repl — the PRPB interpreted stack. Ctrl-D quits.\n");
  std::string line;
  std::string pending;  // multi-line blocks (for/if/while/function ... end)
  int open_blocks = 0;
  while (true) {
    std::printf(open_blocks > 0 ? "... " : "> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    // naive block tracking: count block openers and 'end's at line starts
    const auto first_word = line.substr(0, line.find_first_of(" (\t"));
    if (first_word == "for" || first_word == "if" || first_word == "while" ||
        first_word == "function") {
      ++open_blocks;
    } else if (first_word == "end") {
      if (open_blocks > 0) --open_blocks;
    }
    pending += line;
    pending += '\n';
    if (open_blocks > 0) continue;

    const std::string program = std::move(pending);
    pending.clear();
    try {
      // A lone expression is evaluated and echoed; anything else runs as a
      // program.
      const prpb::interp::Program parsed = prpb::interp::parse(program);
      if (parsed.size() == 1 &&
          parsed.front()->kind == prpb::interp::Stmt::Kind::kExpr) {
        print_value(vm.eval_expression(program));
      } else {
        vm.run(program);
      }
      drain_output(vm, output_cursor);
    } catch (const prpb::util::Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
    }
  }
  std::printf("\n");
  return 0;
}
