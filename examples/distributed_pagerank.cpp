// Distributed pipeline demo — the paper's parallel decomposition, run on
// the simulated cluster: row-partitioned matrix, alltoall edge exchange in
// kernel 1, allreduced in-degrees in kernel 2, allreduced rank vectors in
// kernel 3. Prints per-rank communication statistics and verifies the
// result against the serial pipeline.
#include <cstdio>

#include "core/backend_native.hpp"
#include "core/runner.hpp"
#include "core/validate.hpp"
#include "dist/pipeline.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/fs.hpp"

int main(int argc, char** argv) {
  using namespace prpb;

  util::ArgParser args("distributed_pagerank",
                       "simulated row-partitioned parallel pipeline");
  args.add_option("scale", "graph scale", "12");
  args.add_option("max-ranks", "largest simulated processor count", "8");
  if (!args.parse(argc, argv)) return 0;

  dist::DistConfig config;
  config.scale = static_cast<int>(args.get_int("scale"));

  // Serial reference.
  util::TempDir work("prpb-dist-demo");
  core::PipelineConfig serial;
  serial.scale = config.scale;
  serial.work_dir = work.path();
  core::NativeBackend backend;
  const auto reference = core::run_pipeline(serial, backend).ranks;

  std::printf("distributed pipeline, scale %d (N = %s, M = %s)\n\n",
              config.scale,
              util::human_count(config.num_vertices()).c_str(),
              util::human_count(config.num_edges()).c_str());

  util::TextTable table({"ranks", "K1 exchange", "K3 allreduce",
                         "total comm", "vs serial"});
  const auto max_ranks = static_cast<std::size_t>(args.get_int("max-ranks"));
  bool all_ok = true;
  for (std::size_t p = 1; p <= max_ranks; p *= 2) {
    const dist::DistResult result = dist::run_distributed(config, p);
    const double diff =
        core::normalized_difference(result.ranks, reference);
    const bool ok = diff < 1e-12;
    all_ok = all_ok && ok;
    table.add_row({std::to_string(p),
                   util::human_bytes(result.k1_exchange_bytes),
                   util::human_bytes(result.k3_allreduce_bytes),
                   util::human_bytes(result.total_bytes),
                   ok ? "MATCH" : "DIVERGED"});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("kernel-3 allreduce volume = iterations x P x N x 8 bytes — "
              "the term the paper\npredicts will dominate a parallel "
              "kernel 3 ('limited by network communication').\n");
  return all_ok ? 0 : 1;
}
