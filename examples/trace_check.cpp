// trace_check — structural validator for Chrome trace_event JSON files
// written by `prpb --trace-out` (and the bench harness). Checks that:
//   * the document parses and has the {"traceEvents": [...]} layout;
//   * every event has a name, a known phase, and non-negative timestamps
//     ('X' events additionally a non-negative duration);
//   * on each thread, complete events nest properly — any two spans are
//     either disjoint or one contains the other (what Perfetto's track
//     layout assumes);
//   * hardware-counter args on 'X' spans, when present, are sane: raw
//     counters are non-negative numbers, ipc is a plausible rate and
//     llc_miss_rate is a fraction (spans without counter args are fine —
//     hosts without perf_event_open emit none);
// and prints a per-phase / per-name summary including how many spans
// carried counters. Exits 1 on any violation, so CI can gate on it.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "io/file_stream.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace {

struct SpanRow {
  std::string name;
  std::uint64_t ts = 0;
  std::uint64_t end = 0;
};

int fail(const char* what, const std::string& detail) {
  std::fprintf(stderr, "trace_check: %s: %s\n", what, detail.c_str());
  return 1;
}

/// Validates counter fields in a span's args object; returns "" when fine,
/// otherwise the violation. Absent fields are fine everywhere — graceful
/// degradation means a host may deliver any subset of the counters.
/// Sets `counted` when the span carried at least one raw counter.
std::string check_counter_args(const prpb::util::JsonValue& args,
                               bool& counted) {
  static constexpr const char* kRawCounters[] = {
      "cycles",        "instructions",  "llc_loads",
      "llc_misses",    "branch_misses", "stalled_cycles"};
  bool any_raw = false;
  for (const char* key : kRawCounters) {
    const prpb::util::JsonValue* value = args.find(key);
    if (value == nullptr) continue;
    if (!value->is_number() || value->number() < 0.0) {
      return std::string(key) + " is not a non-negative number";
    }
    any_raw = true;
  }
  const prpb::util::JsonValue* ipc = args.find("ipc");
  if (ipc != nullptr) {
    if (!any_raw) return "ipc without any raw counter";
    if (!ipc->is_number() || ipc->number() <= 0.0 ||
        ipc->number() >= 1000.0) {
      return "ipc outside (0, 1000)";
    }
  }
  const prpb::util::JsonValue* miss_rate = args.find("llc_miss_rate");
  if (miss_rate != nullptr &&
      (!miss_rate->is_number() || miss_rate->number() < 0.0 ||
       miss_rate->number() > 1.0)) {
    return "llc_miss_rate outside [0, 1]";
  }
  const prpb::util::JsonValue* gbps = args.find("dram_gbps");
  if (gbps != nullptr && (!gbps->is_number() || gbps->number() < 0.0)) {
    return "dram_gbps negative";
  }
  counted = any_raw;
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace prpb;
  if (argc != 2) {
    std::fprintf(stderr, "usage: trace_check TRACE.json\n");
    return 2;
  }

  try {
    const util::JsonValue document =
        util::JsonValue::parse(io::read_file(argv[1]));
    if (!document.is_object()) {
      return fail("bad document", "top level is not an object");
    }
    const util::JsonValue* events = document.find("traceEvents");
    if (events == nullptr || !events->is_array()) {
      return fail("bad document", "missing \"traceEvents\" array");
    }

    std::map<char, std::size_t> by_phase;
    std::map<std::string, std::size_t> spans_by_name;
    std::map<std::uint64_t, std::vector<SpanRow>> spans_by_tid;
    std::size_t counter_spans = 0;

    std::size_t index = 0;
    for (const util::JsonValue& event : events->array()) {
      const std::string where = "event #" + std::to_string(index++);
      if (!event.is_object()) return fail("bad event", where);
      const util::JsonValue* name = event.find("name");
      const util::JsonValue* phase = event.find("ph");
      const util::JsonValue* ts = event.find("ts");
      if (name == nullptr || !name->is_string() || name->string().empty()) {
        return fail("missing name", where);
      }
      if (phase == nullptr || !phase->is_string() ||
          phase->string().size() != 1) {
        return fail("missing phase", where);
      }
      if (ts == nullptr || !ts->is_number() || ts->number() < 0.0) {
        return fail("bad ts", where);
      }
      const char ph = phase->string()[0];
      by_phase[ph] += 1;
      if (ph == 'X') {
        const util::JsonValue* dur = event.find("dur");
        if (dur == nullptr || !dur->is_number() || dur->number() < 0.0) {
          return fail("negative or missing dur", where + " " +
                                                     name->string());
        }
        const util::JsonValue* tid = event.find("tid");
        const auto tid_value =
            tid != nullptr && tid->is_number()
                ? static_cast<std::uint64_t>(tid->number())
                : 0;
        SpanRow row;
        row.name = name->string();
        row.ts = static_cast<std::uint64_t>(ts->number());
        row.end = row.ts + static_cast<std::uint64_t>(dur->number());
        const util::JsonValue* args = event.find("args");
        // Accumulated busy-time events ("acc":1) have synthetic back-dated
        // starts and are exempt from the strict-nesting invariant.
        const bool accumulated = args != nullptr && args->is_object() &&
                                 args->find("acc") != nullptr;
        if (!accumulated) spans_by_tid[tid_value].push_back(row);
        spans_by_name[row.name] += 1;
        if (args != nullptr && args->is_object()) {
          bool counted = false;
          const std::string violation = check_counter_args(*args, counted);
          if (!violation.empty()) {
            return fail("bad counter args",
                        where + " " + row.name + ": " + violation);
          }
          if (counted) ++counter_spans;
        }
      } else if (ph != 'C' && ph != 'i') {
        return fail("unknown phase", where + " '" + phase->string() + "'");
      }
    }

    // Nesting: walk each thread's spans sorted by (start asc, end desc) —
    // parents before children on ties — keeping a stack of open spans.
    for (auto& [tid, rows] : spans_by_tid) {
      std::sort(rows.begin(), rows.end(),
                [](const SpanRow& a, const SpanRow& b) {
                  if (a.ts != b.ts) return a.ts < b.ts;
                  return a.end > b.end;
                });
      std::vector<const SpanRow*> open;
      for (const SpanRow& row : rows) {
        while (!open.empty() && row.ts >= open.back()->end) open.pop_back();
        if (!open.empty() && row.end > open.back()->end) {
          return fail("spans overlap without nesting",
                      row.name + " vs " + open.back()->name + " on tid " +
                          std::to_string(tid));
        }
        open.push_back(&row);
      }
    }

    std::printf("trace_check: %s OK\n", argv[1]);
    for (const auto& [ph, count] : by_phase) {
      std::printf("  phase '%c': %zu events\n", ph, count);
    }
    std::printf("  spans with hardware counters: %zu\n", counter_spans);
    for (const auto& [name, count] : spans_by_name) {
      std::printf("  span %-24s x%zu\n", name.c_str(), count);
    }
  } catch (const util::Error& e) {
    return fail("error", e.what());
  }
  return 0;
}
