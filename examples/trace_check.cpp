// trace_check — structural validator for Chrome trace_event JSON files
// written by `prpb --trace-out` (and the bench harness). Checks that:
//   * the document parses and has the {"traceEvents": [...]} layout;
//   * every event has a name, a known phase, and non-negative timestamps
//     ('X' events additionally a non-negative duration);
//   * on each thread, complete events nest properly — any two spans are
//     either disjoint or one contains the other (what Perfetto's track
//     layout assumes);
// and prints a per-phase / per-name summary. Exits 1 on any violation, so
// CI can gate on it.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "io/file_stream.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace {

struct SpanRow {
  std::string name;
  std::uint64_t ts = 0;
  std::uint64_t end = 0;
};

int fail(const char* what, const std::string& detail) {
  std::fprintf(stderr, "trace_check: %s: %s\n", what, detail.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace prpb;
  if (argc != 2) {
    std::fprintf(stderr, "usage: trace_check TRACE.json\n");
    return 2;
  }

  try {
    const util::JsonValue document =
        util::JsonValue::parse(io::read_file(argv[1]));
    if (!document.is_object()) {
      return fail("bad document", "top level is not an object");
    }
    const util::JsonValue* events = document.find("traceEvents");
    if (events == nullptr || !events->is_array()) {
      return fail("bad document", "missing \"traceEvents\" array");
    }

    std::map<char, std::size_t> by_phase;
    std::map<std::string, std::size_t> spans_by_name;
    std::map<std::uint64_t, std::vector<SpanRow>> spans_by_tid;

    std::size_t index = 0;
    for (const util::JsonValue& event : events->array()) {
      const std::string where = "event #" + std::to_string(index++);
      if (!event.is_object()) return fail("bad event", where);
      const util::JsonValue* name = event.find("name");
      const util::JsonValue* phase = event.find("ph");
      const util::JsonValue* ts = event.find("ts");
      if (name == nullptr || !name->is_string() || name->string().empty()) {
        return fail("missing name", where);
      }
      if (phase == nullptr || !phase->is_string() ||
          phase->string().size() != 1) {
        return fail("missing phase", where);
      }
      if (ts == nullptr || !ts->is_number() || ts->number() < 0.0) {
        return fail("bad ts", where);
      }
      const char ph = phase->string()[0];
      by_phase[ph] += 1;
      if (ph == 'X') {
        const util::JsonValue* dur = event.find("dur");
        if (dur == nullptr || !dur->is_number() || dur->number() < 0.0) {
          return fail("negative or missing dur", where + " " +
                                                     name->string());
        }
        const util::JsonValue* tid = event.find("tid");
        const auto tid_value =
            tid != nullptr && tid->is_number()
                ? static_cast<std::uint64_t>(tid->number())
                : 0;
        SpanRow row;
        row.name = name->string();
        row.ts = static_cast<std::uint64_t>(ts->number());
        row.end = row.ts + static_cast<std::uint64_t>(dur->number());
        spans_by_tid[tid_value].push_back(row);
        spans_by_name[row.name] += 1;
      } else if (ph != 'C' && ph != 'i') {
        return fail("unknown phase", where + " '" + phase->string() + "'");
      }
    }

    // Nesting: walk each thread's spans sorted by (start asc, end desc) —
    // parents before children on ties — keeping a stack of open spans.
    for (auto& [tid, rows] : spans_by_tid) {
      std::sort(rows.begin(), rows.end(),
                [](const SpanRow& a, const SpanRow& b) {
                  if (a.ts != b.ts) return a.ts < b.ts;
                  return a.end > b.end;
                });
      std::vector<const SpanRow*> open;
      for (const SpanRow& row : rows) {
        while (!open.empty() && row.ts >= open.back()->end) open.pop_back();
        if (!open.empty() && row.end > open.back()->end) {
          return fail("spans overlap without nesting",
                      row.name + " vs " + open.back()->name + " on tid " +
                          std::to_string(tid));
        }
        open.push_back(&row);
      }
    }

    std::printf("trace_check: %s OK\n", argv[1]);
    for (const auto& [ph, count] : by_phase) {
      std::printf("  phase '%c': %zu events\n", ph, count);
    }
    for (const auto& [name, count] : spans_by_name) {
      std::printf("  span %-24s x%zu\n", name.c_str(), count);
    }
  } catch (const util::Error& e) {
    return fail("error", e.what());
  }
  return 0;
}
