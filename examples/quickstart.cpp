// Quickstart: run the full PageRank pipeline at a small scale with the
// native backend, print per-kernel rates, and validate kernel 3 against the
// dense eigenvector check from the paper.
//
//   ./build/examples/quickstart [--scale 12]
#include <cstdio>

#include "core/backend.hpp"
#include "core/runner.hpp"
#include "core/validate.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/fs.hpp"

int main(int argc, char** argv) {
  using namespace prpb;

  util::ArgParser args("quickstart", "minimal PageRank pipeline run");
  args.add_option("scale", "graph scale S (N = 2^S vertices)", "12");
  if (!args.parse(argc, argv)) return 0;

  core::PipelineConfig config;
  config.scale = static_cast<int>(args.get_int("scale"));
  config.num_files = 4;
  util::TempDir work("prpb-quickstart");
  config.work_dir = work.path();

  std::printf("PageRank Pipeline Benchmark — quickstart\n");
  std::printf("scale %d: N = %s vertices, M = %s edges\n\n", config.scale,
              util::human_count(config.num_vertices()).c_str(),
              util::human_count(config.num_edges()).c_str());

  const auto backend = core::make_backend("native");
  const core::PipelineResult result = core::run_pipeline(config, *backend);

  util::TextTable table({"kernel", "seconds", "edges/sec"});
  const auto row = [&](const char* name, const core::KernelMetrics& m) {
    table.add_row({name, util::fixed(m.seconds, 4),
                   util::sci(m.edges_per_second())});
  };
  row("K0 generate", result.k0);
  row("K1 sort", result.k1);
  row("K2 filter", result.k2);
  row("K3 pagerank", result.k3);
  std::printf("%s\n", table.str().c_str());

  if (config.num_vertices() <= 4096) {
    const auto check = core::validate_against_eigenvector(
        result.matrix, result.ranks, config.damping, 1e-6);
    std::printf("eigenvector check: %s (max |diff| = %.2e)\n",
                check.pass ? "PASS" : "FAIL", check.max_abs_diff);
    if (!check.pass) return 1;
  }

  const auto top = core::top_k(result.ranks, 5);
  std::printf("top-5 vertices by PageRank:");
  for (const auto v : top) std::printf(" %llu", (unsigned long long)v);
  std::printf("\n");
  return 0;
}
