// Out-of-core kernel 1 — the paper: "if u and v are too large to fit in
// memory, then an out-of-core algorithm would be required."
//
// Writes a stage, sorts it twice — once fully in memory, once through the
// external merge sort with a deliberately tiny RAM budget — and verifies
// the two sorted stages are byte-identical.
#include <cstdio>

#include "gen/kronecker.hpp"
#include "io/edge_files.hpp"
#include "sort/edge_sort.hpp"
#include "sort/external_sort.hpp"
#include "sort/policy.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/fs.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace prpb;

  util::ArgParser args("out_of_core_sort",
                       "external vs in-memory kernel-1 sort demo");
  args.add_option("scale", "graph scale", "16");
  args.add_option("budget-kb", "external sort RAM budget (KiB)", "512");
  if (!args.parse(argc, argv)) return 0;

  const int scale = static_cast<int>(args.get_int("scale"));
  const std::uint64_t budget =
      static_cast<std::uint64_t>(args.get_int("budget-kb")) * 1024;

  gen::KroneckerParams params;
  params.scale = scale;
  gen::KroneckerGenerator generator(params);
  util::TempDir work("prpb-ooc");
  const auto stage0 = work.sub("input");
  io::write_generated_edges(generator, stage0, 4, io::Codec::kFast);
  std::printf("stage 0: %s edges, %s on disk\n",
              util::human_count(generator.num_edges()).c_str(),
              util::human_bytes(util::dir_bytes(stage0)).c_str());

  const auto decision =
      sort::choose_sort_policy(generator.num_edges(), budget);
  std::printf("policy at a %s budget: %s (in-memory would need %s)\n\n",
              util::human_bytes(budget).c_str(),
              decision.strategy == sort::SortStrategy::kExternal
                  ? "EXTERNAL sort"
                  : "in-memory sort",
              util::human_bytes(decision.required_bytes).c_str());

  // In-memory reference.
  const auto mem_dir = work.sub("sorted_mem");
  util::Stopwatch mem_watch;
  {
    gen::EdgeList edges = io::read_all_edges(stage0, io::Codec::kFast);
    sort::radix_sort(edges);
    io::write_edge_list(edges, mem_dir, 4, io::Codec::kFast);
  }
  const double mem_seconds = mem_watch.seconds();

  // External with the tiny budget.
  const auto ext_dir = work.sub("sorted_ext");
  sort::ExternalSortConfig config;
  config.memory_budget_bytes = budget;
  config.output_shards = 4;
  util::Stopwatch ext_watch;
  const auto stats =
      sort::external_sort_stage(stage0, ext_dir, work.sub("tmp"), config);
  const double ext_seconds = ext_watch.seconds();

  std::printf("in-memory: %.3fs (%s edges/s)\n", mem_seconds,
              util::sci(static_cast<double>(generator.num_edges()) /
                        mem_seconds)
                  .c_str());
  std::printf("external:  %.3fs (%s edges/s), %zu initial runs, %zu merge "
              "passes, %s spilled\n",
              ext_seconds,
              util::sci(static_cast<double>(stats.edges) / ext_seconds)
                  .c_str(),
              stats.initial_runs, stats.merge_passes,
              util::human_bytes(stats.spill_bytes).c_str());

  const auto a = io::read_all_edges(mem_dir, io::Codec::kFast);
  const auto b = io::read_all_edges(ext_dir, io::Codec::kFast);
  const bool identical = a == b;
  std::printf("sorted outputs identical: %s\n", identical ? "YES" : "NO");
  return identical ? 0 : 1;
}
