// bench_diff: noise-aware comparison of two benchmark cell documents
// (BENCH_kernels.json, BENCH_serving.json).
//
// Compares the candidate against the baseline cell-by-cell (matched on the
// full cell identity: kernel, backend, scale, storage, stage format,
// fast-path, source, algorithm, CSR form, metric) and flags a regression
// only when the median change exceeds a band derived from both documents'
// recorded MADs — run-to-run jitter inside the band is reported but never
// fails. The check is direction-aware: seconds cells regress when slower,
// qps (serving throughput) cells regress when throughput drops.
// Cells present only in the candidate (a freshly added config axis, e.g.
// csr=compressed against a pre-axis baseline) are "added": they extend the
// matrix, never fail the gate, and are listed in the --json verdict's
// summary.added_cells.
//
//   bench_diff BENCH_kernels.json BENCH_new.json [--json verdict.json]
//
// Exit status: 0 when no cell regressed, 1 on regression, 2 on usage or
// I/O errors — so CI can gate on the code and archive the JSON verdict.
#include <cstdio>

#include "io/file_stream.hpp"
#include "model/trajectory.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace {

std::string percent(double fraction) {
  return prpb::util::fixed(fraction * 100.0, 1) + "%";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace prpb;

  util::ArgParser args(
      "bench_diff",
      "compare two BENCH_kernels.json documents cell-by-cell;\n"
      "usage: bench_diff <baseline.json> <candidate.json>");
  args.add_option("noise-mult",
                  "regression band width in combined MADs", "4.0");
  args.add_option("min-rel",
                  "relative band floor (also the whole band for "
                  "single-shot cells)", "0.05");
  args.add_option("json", "write the machine-readable verdict here", "");
  args.add_flag("quiet", "suppress the per-cell table");

  try {
    if (!args.parse(argc, argv)) return 0;
    if (args.positional().size() != 2) {
      std::fprintf(stderr,
                   "bench_diff: expected exactly two positional arguments "
                   "(baseline.json candidate.json)\n%s",
                   args.help().c_str());
      return 2;
    }
    const std::string& base_path = args.positional()[0];
    const std::string& head_path = args.positional()[1];

    model::DiffOptions options;
    options.noise_mult = args.get_double("noise-mult");
    options.min_rel_band = args.get_double("min-rel");
    util::require(options.noise_mult >= 0, "--noise-mult must be >= 0");
    util::require(options.min_rel_band >= 0, "--min-rel must be >= 0");

    const auto base = model::parse_cells_text(io::read_file(base_path));
    const auto head = model::parse_cells_text(io::read_file(head_path));
    const model::DiffReport report = model::diff_cells(base, head, options);

    if (!args.get_flag("quiet")) {
      // "base"/"head" carry the cell's primary value: seconds for kernel
      // cells, QPS (suffixed "/s") for serving cells.
      util::TextTable table(
          {"cell", "base", "head", "delta", "band", "verdict"});
      for (const model::CellDiff& diff : report.cells) {
        const model::BenchCell& id =
            diff.verdict == model::CellVerdict::kRemoved ? diff.base
                                                         : diff.head;
        const bool matched = diff.verdict != model::CellVerdict::kAdded &&
                             diff.verdict != model::CellVerdict::kRemoved;
        const auto show = [&id](const model::BenchCell& cell) {
          return id.higher_is_better()
                     ? util::fixed(cell.primary_value(), 0) + "/s"
                     : util::fixed(cell.primary_value(), 4) + " s";
        };
        table.add_row(
            {id.key(),
             diff.verdict == model::CellVerdict::kAdded ? "-"
                                                        : show(diff.base),
             diff.verdict == model::CellVerdict::kRemoved ? "-"
                                                          : show(diff.head),
             matched ? percent(diff.delta_rel) : "-",
             matched ? percent(diff.band_rel) : "-",
             model::verdict_name(diff.verdict)});
      }
      std::printf("%s\n", table.str().c_str());
    }
    std::printf(
        "bench_diff: %d regression(s), %d improvement(s), %d within "
        "noise, %d added, %d removed -> %s\n",
        report.regressions, report.improvements, report.within_noise,
        report.added, report.removed,
        report.regressed() ? "REGRESSION" : "ok");

    if (!args.get("json").empty()) {
      io::write_file(args.get("json"),
                     model::diff_json(report, base_path, head_path, options) +
                         "\n");
    }
    return report.regressed() ? 1 : 0;
  } catch (const util::Error& e) {
    std::fprintf(stderr, "bench_diff: error: %s\n", e.what());
    return 2;
  }
}
